"""Simulation configuration mirroring Table I of the TiVaPRoMi paper.

The paper evaluates against a DDR4 device simulated in gem5.  This module
captures every parameter of that setup as frozen dataclasses so that a
single :class:`SimConfig` value fully determines a simulation run.

Two preset configurations are provided:

* :func:`ddr4_paper_config` -- the exact Table I parameters (8192 refresh
  intervals per 64 ms window, ``Pbase = 2**-23``, 139 K flip threshold).
* :func:`small_test_config` -- a geometrically-shrunk configuration used
  by the unit tests so that whole refresh windows stay cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Row-Hammer bit-flip activation threshold from Kim et al. [12], used by
#: the paper and by every mitigation work it compares against.
FLIP_THRESHOLD = 139_000

#: Half the flip threshold; the paper uses 69 K as the security margin for
#: the case where both neighbours of a victim act as aggressors.
HALF_FLIP_THRESHOLD = FLIP_THRESHOLD // 2

#: Base probability constant chosen so that ``RefInt * Pbase ~= 0.001``
#: (Table I: 2**-23, giving 9.8e-4 with RefInt = 8192).
PBASE_PAPER = 2.0 ** -23


@dataclass(frozen=True)
class DRAMTiming:
    """DRAM device timing parameters (Table I, DDR4 rows).

    All durations are in nanoseconds; ``io_freq_ghz`` is the interface
    clock used to convert durations into mitigation-FSM cycle budgets.
    """

    refresh_window_ms: float = 64.0
    refresh_interval_us: float = 7.8
    act_to_act_ns: float = 45.0
    refresh_time_ns: float = 350.0
    io_freq_ghz: float = 1.2

    @property
    def refresh_window_ns(self) -> float:
        return self.refresh_window_ms * 1e6

    @property
    def refresh_interval_ns(self) -> float:
        return self.refresh_interval_us * 1e3

    @property
    def act_cycle_budget(self) -> int:
        """Clock cycles available to process an ``act`` command.

        The paper derives 54 cycles for DDR4 (45 ns at 1.2 GHz).
        """
        return int(self.act_to_act_ns * self.io_freq_ghz)

    @property
    def ref_cycle_budget(self) -> int:
        """Clock cycles available to process a ``ref`` command.

        The paper derives 420 cycles for DDR4 (350 ns at 1.2 GHz).
        """
        return int(self.refresh_time_ns * self.io_freq_ghz)

    @property
    def max_acts_per_interval(self) -> int:
        """Upper bound of activations fitting in one refresh interval.

        TWiCe [13] derives 165 for DDR4; with Table I numbers
        ``7.8 us / 45 ns = 173`` is the raw bound and the paper adopts
        165 to account for refresh time.  We compute the raw bound and
        subtract the refresh slot.
        """
        usable_ns = self.refresh_interval_ns - self.refresh_time_ns
        return int(usable_ns // self.act_to_act_ns)


#: DDR3 interface timing used for the paper's second synthesis target
#: (320 MHz FPGA controller; Section IV).
DDR3_TIMING = DRAMTiming(io_freq_ghz=0.32)


@dataclass(frozen=True)
class DRAMGeometry:
    """Address geometry of the simulated device.

    ``refint`` (number of refresh intervals per window) is derived as
    ``rows_per_bank / rows_per_interval`` because every row is refreshed
    exactly once per window and each interval refreshes a contiguous
    group of ``rows_per_interval`` rows (Section III).
    """

    num_banks: int = 4
    rows_per_bank: int = 65_536
    rows_per_interval: int = 8
    #: sense-amplifier subarrays per bank.  1 (the default) keeps the
    #: paper's flat-bank adjacency; larger values split the bank into
    #: equal row slices separated by sense-amp stripes, across which
    #: Row-Hammer disturbance does not propagate (PRACtical, Section II)
    subarrays_per_bank: int = 1

    def __post_init__(self) -> None:
        if self.rows_per_bank % self.rows_per_interval:
            raise ValueError(
                "rows_per_bank must be a multiple of rows_per_interval "
                f"(got {self.rows_per_bank} / {self.rows_per_interval})"
            )
        if self.num_banks < 1 or self.rows_per_bank < 2:
            raise ValueError("need at least one bank with two rows")
        if self.subarrays_per_bank < 1:
            raise ValueError("subarrays_per_bank must be positive")
        if self.rows_per_bank % self.subarrays_per_bank:
            raise ValueError(
                "rows_per_bank must be a multiple of subarrays_per_bank "
                f"(got {self.rows_per_bank} / {self.subarrays_per_bank})"
            )
        if self.rows_per_bank // self.subarrays_per_bank < 2:
            raise ValueError("each subarray needs at least two rows")

    @property
    def refint(self) -> int:
        """Number of refresh intervals per refresh window (paper: 8192)."""
        return self.rows_per_bank // self.rows_per_interval

    def refresh_interval_of(self, row: int) -> int:
        """Return ``f_r``, the interval within a window refreshing *row*.

        This is the paper's ``f_r = r / RowsPI`` mapping; because
        ``rows_per_interval`` is a power of two in every real device the
        hardware implements it as a shift.
        """
        self._check_row(row)
        return row // self.rows_per_interval

    def rows_of_interval(self, interval: int) -> range:
        """Rows refreshed during window-relative *interval* (sequential policy)."""
        if not 0 <= interval < self.refint:
            raise ValueError(f"interval {interval} outside [0, {self.refint})")
        start = interval * self.rows_per_interval
        return range(start, start + self.rows_per_interval)

    @property
    def rows_per_subarray(self) -> int:
        """Rows in one sense-amp subarray slice of the bank."""
        return self.rows_per_bank // self.subarrays_per_bank

    def subarray_of(self, row: int) -> int:
        """Index of the subarray containing *row*."""
        self._check_row(row)
        return row // self.rows_per_subarray

    def subarray_rows(self, subarray: int) -> range:
        """Rows belonging to *subarray* (contiguous slice)."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise ValueError(
                f"subarray {subarray} outside [0, {self.subarrays_per_bank})"
            )
        start = subarray * self.rows_per_subarray
        return range(start, start + self.rows_per_subarray)

    def neighbors(self, row: int) -> tuple[int, ...]:
        """Physical neighbours of *row*; edge rows have a single neighbour.

        Disturbance never crosses a sense-amp stripe, so with more than
        one subarray the rows at each subarray boundary also have a
        single neighbour.  Subclasses (e.g.
        :class:`repro.dram.remap.RemappedGeometry`) override this with
        the device's true internal adjacency.
        """
        self._check_row(row)
        width = self.rows_per_subarray
        low = (row // width) * width
        high = low + width - 1
        if row == low:
            return (row + 1,)
        if row == high:
            return (row - 1,)
        return (row - 1, row + 1)

    def assumed_neighbors(self, row: int) -> tuple[int, ...]:
        """The N+-1 adjacency an *address-based* mitigation assumes.

        PARA/ProHit/MRLoc compute victim addresses from the aggressor
        address; they cannot see defective-row remapping (Section II),
        so this always returns N+-1 regardless of the true adjacency.
        ``act_n``-based techniques never call this -- the memory
        resolves the neighbours internally.
        """
        self._check_row(row)
        if row == 0:
            return (1,)
        if row == self.rows_per_bank - 1:
            return (row - 1,)
        return (row - 1, row + 1)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} outside [0, {self.rows_per_bank})")


@dataclass(frozen=True)
class SimConfig:
    """Complete configuration of a trace-driven mitigation simulation."""

    geometry: DRAMGeometry = field(default_factory=DRAMGeometry)
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    #: activations of the two aggressors needed to flip bits in the victim
    flip_threshold: int = FLIP_THRESHOLD
    #: per-interval-weight base probability (Table I: 2**-23)
    pbase: float = PBASE_PAPER
    #: history-table entries per bank for the TiVaPRoMi variants
    history_table_entries: int = 32
    #: counter-table entries per bank for CaPRoMi (Section IV: 64,
    #: chosen between the average 40 and maximum 165 acts per interval)
    counter_table_entries: int = 64
    #: counter value locking a CaPRoMi entry against random replacement;
    #: the paper does not give a value, see DESIGN.md section 6
    capromi_lock_threshold: int = 32
    #: second-neighbour disturbance per activation (Half-Double
    #: coupling); 0 = the paper's distance-1 model
    distance2_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.distance2_rate < 1.0:
            raise ValueError(
                f"distance2_rate must be in [0, 1): {self.distance2_rate}"
            )
        if not 0.0 < self.pbase < 1.0:
            raise ValueError(f"pbase must be in (0, 1), got {self.pbase}")
        if self.flip_threshold < 1:
            raise ValueError("flip_threshold must be positive")
        if self.history_table_entries < 1 or self.counter_table_entries < 1:
            raise ValueError("table sizes must be positive")

    @property
    def max_probability(self) -> float:
        """``RefInt * Pbase`` -- the paper bounds this near PARA's 0.001."""
        return self.geometry.refint * self.pbase

    def scaled(self, **changes) -> "SimConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)


def ddr4_paper_config() -> SimConfig:
    """The exact configuration of Table I (DDR4, RefInt = 8192)."""
    return SimConfig()


def small_test_config(
    rows_per_bank: int = 512,
    rows_per_interval: int = 8,
    num_banks: int = 1,
    flip_threshold: int = 2_000,
    subarrays_per_bank: int = 1,
) -> SimConfig:
    """A shrunk geometry for unit tests.

    ``pbase`` is rescaled so that ``RefInt * Pbase`` keeps the paper's
    ~0.001 bound, preserving every probability ratio the technique
    depends on.
    """
    geometry = DRAMGeometry(
        num_banks=num_banks,
        rows_per_bank=rows_per_bank,
        rows_per_interval=rows_per_interval,
        subarrays_per_bank=subarrays_per_bank,
    )
    refint = geometry.refint
    pbase = 2.0 ** -(10 + int(math.log2(refint)))
    return SimConfig(
        geometry=geometry,
        flip_threshold=flip_threshold,
        pbase=pbase,
        history_table_entries=8,
        counter_table_entries=16,
        capromi_lock_threshold=8,
    )
