"""Docs-as-tests: the documentation's code blocks are executable.

Every fenced code block tagged ``runnable`` in README.md and
``docs/*.md`` is executed here, verbatim, against the bundled fixture
traces -- so a documented command cannot silently rot.  Blocks run in
file order inside a per-document sandbox (later blocks may consume
files written by earlier ones), with:

* a ``repro`` shim on ``PATH`` (``exec python -m repro``);
* ``PYTHONPATH`` pointing at the repo's ``src``;
* the fixture traces copied to ``tests/fixtures/traces/`` so the
  documented relative paths work exactly as they do from the repo
  root;
* ``REPRO_INGEST_CACHE`` redirected into the sandbox.

Tag a block by appending ``runnable`` to its info string::

    ```bash runnable
    repro ingest tests/fixtures/traces/mini_native.trace
    ```

Supported languages: ``python``, ``bash``, ``sh``, ``console``
(``console`` executes the ``$ ``-prefixed lines and ignores the rest).

The module also link-checks the documentation: every relative link or
file reference must resolve inside the repo.
"""

from __future__ import annotations

import os
import re
import shutil
import stat
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List

import pytest

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "traces"
DOC_FILES = sorted(
    [REPO / "README.md"] + list((REPO / "docs").glob("*.md")),
    key=lambda path: path.name,
)
#: the documentation index every page must be reachable from
DOC_PAGES = (
    "adversary.md",
    "architecture.md",
    "campaigns.md",
    "distributed.md",
    "mitigations.md",
    "observability.md",
    "reproducing.md",
    "serve.md",
    "trace-formats.md",
)

_FENCE = re.compile(r"^```(.*)$")
_BLOCK_TIMEOUT_S = 300


@dataclass
class DocBlock:
    doc: Path
    language: str
    line_no: int  # 1-based line of the opening fence
    code: str

    @property
    def label(self) -> str:
        return f"{self.doc.relative_to(REPO)}:{self.line_no}"


def extract_blocks(doc: Path) -> List[DocBlock]:
    """All ``runnable``-tagged fenced code blocks of *doc*, in order."""
    blocks: List[DocBlock] = []
    info = None
    start = 0
    lines: List[str] = []
    for line_no, line in enumerate(doc.read_text().splitlines(), start=1):
        match = _FENCE.match(line)
        if match is None:
            if info is not None:
                lines.append(line)
            continue
        if info is None:  # opening fence
            info, start, lines = match.group(1).strip(), line_no, []
            continue
        tokens = info.split()  # closing fence: flush
        if "runnable" in tokens[1:]:
            blocks.append(DocBlock(doc, tokens[0], start, "\n".join(lines)))
        info = None
    if info is not None:
        raise AssertionError(f"{doc}: unterminated code fence at {start}")
    return blocks


def console_commands(code: str) -> str:
    """The ``$ ``-prefixed commands of a console block (with output
    lines dropped), joined into one shell script."""
    commands = []
    for line in code.splitlines():
        if line.startswith("$ "):
            commands.append(line[2:])
        elif commands and line.startswith("> "):  # continuation
            commands[-1] += "\n" + line[2:]
    return "\n".join(commands)


@pytest.fixture
def sandbox(tmp_path):
    """A working directory that mirrors the repo-root paths the docs use."""
    target = tmp_path / "repo"
    fixture_dir = target / "tests" / "fixtures" / "traces"
    fixture_dir.mkdir(parents=True)
    for fixture in FIXTURES.iterdir():
        if fixture.is_file():
            shutil.copy2(fixture, fixture_dir / fixture.name)
    shim_dir = tmp_path / "bin"
    shim_dir.mkdir()
    shim = shim_dir / "repro"
    shim.write_text(f'#!/bin/sh\nexec "{sys.executable}" -m repro "$@"\n')
    shim.chmod(shim.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP)
    env = dict(os.environ)
    env["PATH"] = f"{shim_dir}{os.pathsep}" + env.get("PATH", "")
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_INGEST_CACHE"] = str(tmp_path / "ingest-cache")
    return target, env


def run_block(block: DocBlock, cwd: Path, env) -> None:
    if block.language == "python":
        argv = [sys.executable, "-c", block.code]
    elif block.language in ("bash", "sh"):
        argv = ["sh", "-e", "-u", "-c", block.code]
    elif block.language == "console":
        argv = ["sh", "-e", "-u", "-c", console_commands(block.code)]
    else:
        raise AssertionError(
            f"{block.label}: unsupported runnable language "
            f"{block.language!r}"
        )
    proc = subprocess.run(
        argv, cwd=cwd, env=env, capture_output=True, text=True,
        timeout=_BLOCK_TIMEOUT_S,
    )
    assert proc.returncode == 0, (
        f"documented {block.language} block at {block.label} exited "
        f"{proc.returncode}\n--- code ---\n{block.code}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=lambda path: str(path.relative_to(REPO))
)
def test_runnable_blocks_execute(doc, sandbox):
    blocks = extract_blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name} has no runnable blocks")
    cwd, env = sandbox
    for block in blocks:
        run_block(block, cwd, env)


class TestHarnessCoverage:
    """The docs the PR promises executable stay executable."""

    def test_trace_formats_page_is_exercised(self):
        blocks = extract_blocks(REPO / "docs" / "trace-formats.md")
        assert len(blocks) >= 4
        assert {block.language for block in blocks} >= {"bash", "python"}

    def test_readme_quickstart_is_exercised(self):
        assert any(
            block.language == "python"
            for block in extract_blocks(REPO / "README.md")
        )


def iter_links(doc: Path) -> Iterator[tuple]:
    """(line_no, target) for every markdown link in *doc*."""
    pattern = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    for line_no, line in enumerate(doc.read_text().splitlines(), start=1):
        for match in pattern.finditer(line):
            yield line_no, match.group(1)


@pytest.mark.parametrize(
    "doc",
    sorted(
        DOC_FILES + [REPO / "EXPERIMENTS.md", REPO / "DESIGN.md"],
        key=lambda path: path.name,
    ),
    ids=lambda path: str(path.relative_to(REPO)),
)
def test_relative_links_resolve(doc):
    if not doc.exists():
        pytest.skip(f"{doc.name} not present")
    broken = []
    for line_no, target in iter_links(doc):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(f"{doc.name}:{line_no} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_readme_indexes_every_docs_page():
    readme = (REPO / "README.md").read_text()
    missing = [page for page in DOC_PAGES if f"docs/{page}" not in readme]
    assert not missing, f"README docs index is missing: {missing}"
