"""Tests for the parameter sweeps."""


from repro.config import small_test_config
from repro.sim.sweep import sweep_counter_table, sweep_history_table, sweep_pbase
from repro.traces.attacker import double_sided
from repro.traces.mixer import build_trace
from repro.traces.workload import WorkloadParams


def trace_factory(config):
    def factory(seed):
        attack = double_sided(
            config.geometry, bank=0, victim=100, acts_per_interval=60
        )
        return build_trace(
            config,
            total_intervals=32,
            benign_params=WorkloadParams(avg_acts_per_interval=15),
            attacks=[attack],
            seed=seed,
        )

    return factory


class TestHistorySweep:
    def test_one_point_per_size(self):
        config = small_test_config(flip_threshold=5_000)
        points = sweep_history_table(
            config, trace_factory(config), sizes=(4, 16), seeds=(0,)
        )
        assert [point.value for point in points] == [4, 16]
        assert all(point.parameter == "history_table_entries" for point in points)

    def test_table_bytes_grow_with_size(self):
        config = small_test_config(flip_threshold=5_000)
        points = sweep_history_table(
            config, trace_factory(config), sizes=(4, 16), seeds=(0,)
        )
        assert points[1].table_bytes > points[0].table_bytes


class TestCounterSweep:
    def test_runs_capromi(self):
        config = small_test_config(flip_threshold=5_000)
        points = sweep_counter_table(
            config, trace_factory(config), sizes=(8, 16), seeds=(0,)
        )
        assert len(points) == 2
        assert all(point.flips == 0 for point in points)


class TestPbaseSweep:
    def test_overhead_monotone_in_pbase(self):
        config = small_test_config(flip_threshold=5_000)
        points = sweep_pbase(
            config,
            trace_factory(config),
            scales=(0.5, 4.0),
            seeds=(0, 1),
            check_flooding=False,
        )
        assert points[1].overhead_pct >= points[0].overhead_pct

    def test_flooding_margin_included_when_requested(self):
        config = small_test_config(flip_threshold=5_000)
        points = sweep_pbase(
            config,
            trace_factory(config),
            scales=(4.0,),
            seeds=(0,),
            check_flooding=True,
            flood_seeds=(0, 1),
        )
        assert points[0].flood_median_acts is None or points[0].flood_median_acts > 0


class TestRefreshMappingAblation:
    def test_assumed_vs_exact_mapping(self):
        from repro.config import small_test_config
        from repro.dram.refresh import RandomRefresh
        from repro.sim.sweep import refresh_mapping_ablation
        from repro.traces.mixer import paper_mixed_workload

        config = small_test_config(
            rows_per_bank=2048, num_banks=2, flip_threshold=30_000
        )
        factory = lambda seed: paper_mixed_workload(
            config, total_intervals=256, seed=seed
        )
        policy_factory = lambda seed: RandomRefresh(config.geometry, seed=0)
        assumed, exact = refresh_mapping_ablation(
            config, factory, policy_factory, seeds=(0,)
        )
        # both protect (the paper's "not required to be effective")
        assert assumed.total_flips == 0
        assert exact.total_flips == 0
        # exact knowledge can only reduce wasted activations (weights
        # computed against the true refresh order are never stale)
        assert exact.overhead_mean <= assumed.overhead_mean * 1.2

    def test_refresh_slot_of_inverts_policy(self):
        from repro.config import small_test_config
        from repro.dram.refresh import RandomRefresh

        config = small_test_config()
        policy = RandomRefresh(config.geometry, seed=4)
        for interval in (0, 5, 63):
            for row in policy.rows_for_interval(interval):
                assert policy.refresh_slot_of(row) == interval


class TestSweepGrids:
    """Degenerate grid handling: empty, single-point, and duplicates."""

    def config(self):
        return small_test_config(flip_threshold=5_000)

    def test_empty_grid_returns_no_points(self):
        config = self.config()
        assert sweep_history_table(
            config, trace_factory(config), sizes=(), seeds=(0,)
        ) == []
        assert sweep_counter_table(
            config, trace_factory(config), sizes=(), seeds=(0,)
        ) == []
        assert sweep_pbase(
            config, trace_factory(config), scales=(), seeds=(0,),
            check_flooding=False,
        ) == []

    def test_single_point_grid(self):
        config = self.config()
        points = sweep_history_table(
            config, trace_factory(config), sizes=(16,), seeds=(0,)
        )
        assert len(points) == 1
        assert points[0].parameter == "history_table_entries"
        assert points[0].value == 16

    def test_duplicate_values_deduplicated_in_order(self):
        config = self.config()
        points = sweep_history_table(
            config, trace_factory(config), sizes=(4, 4, 16, 4), seeds=(0,)
        )
        assert [point.value for point in points] == [4, 16]

    def test_duplicate_pbase_scales_deduplicated(self):
        config = self.config()
        points = sweep_pbase(
            config, trace_factory(config), scales=(1.0, 1.0), seeds=(0,),
            check_flooding=False,
        )
        assert [point.value for point in points] == [1.0]

    def test_equal_value_distinct_spelling_scales_deduplicated(self):
        """Regression: dedup canonicalises to the float value, so ``1``,
        ``1.0`` and ``"1e0"`` are one grid point, and the first spelling
        wins (``int`` here, as passed)."""
        from repro.sim.sweep import _unique

        assert _unique([1, 1.0, "1e0", 0.5, "0.5", 2]) == [1, 0.5, 2]
        # non-numeric values still dedup by identity rather than crash
        assert _unique(["a", "a", "b"]) == ["a", "b"]

        config = self.config()
        points = sweep_pbase(
            config, trace_factory(config), scales=(1, 1.0, "1e0", 2.0),
            seeds=(0,), check_flooding=False,
        )
        assert [float(point.value) for point in points] == [1.0, 2.0]

    def test_fused_sweep_matches_reference_sweep(self):
        """The fused pbase sweep path produces the same points as the
        per-cell reference path (same scales, same aggregates)."""
        config = self.config()
        reference = sweep_pbase(
            config, trace_factory(config), scales=(0.5, 2.0), seeds=(0, 1),
            check_flooding=False,
        )
        fused = sweep_pbase(
            config, trace_factory(config), scales=(0.5, 2.0), seeds=(0, 1),
            check_flooding=False, engine="fused",
        )
        assert [point.value for point in fused] == [
            point.value for point in reference
        ]
        for ref, fus in zip(reference, fused):
            assert fus.flips == ref.flips
            assert fus.overhead_pct == ref.overhead_pct
