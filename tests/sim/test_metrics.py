"""Tests for SimResult metric definitions."""

import pytest

from repro.dram.disturbance import FlipEvent
from repro.sim.metrics import SimResult


def result(**kwargs):
    defaults = dict(technique="X", seed=0, flip_threshold=1000)
    defaults.update(kwargs)
    return SimResult(**defaults)


class TestOverhead:
    def test_overhead_pct(self):
        r = result(normal_activations=10_000, extra_activations=10)
        assert r.overhead_pct == pytest.approx(0.1)

    def test_zero_activations_safe(self):
        assert result().overhead_pct == 0.0
        assert result().fpr_pct == 0.0
        assert result().attack_fraction == 0.0

    def test_fpr_pct(self):
        r = result(normal_activations=10_000, fp_extra_activations=5)
        assert r.fpr_pct == pytest.approx(0.05)

    def test_attack_fraction(self):
        r = result(normal_activations=100, attack_activations=38)
        assert r.attack_fraction == pytest.approx(0.38)


class TestProtection:
    def test_attack_succeeded_iff_flips(self):
        assert not result().attack_succeeded
        flipped = result(flips=[FlipEvent(bank=0, row=1, count=1000)])
        assert flipped.attack_succeeded

    def test_margin_one_when_untouched(self):
        assert result(max_disturbance=0).protection_margin == 1.0

    def test_margin_half(self):
        r = result(max_disturbance=500, flip_threshold=1000)
        assert r.protection_margin == pytest.approx(0.5)

    def test_margin_zero_on_flip(self):
        r = result(
            flips=[FlipEvent(bank=0, row=1, count=1000)], max_disturbance=1000
        )
        assert r.protection_margin == 0.0

    def test_margin_clamped_non_negative(self):
        r = result(max_disturbance=5000, flip_threshold=1000)
        assert r.protection_margin == 0.0

    def test_unknown_threshold_defaults_to_safe(self):
        r = result(flip_threshold=0, max_disturbance=10)
        assert r.protection_margin == 1.0


class TestSummary:
    def test_summary_contains_key_numbers(self):
        r = result(
            normal_activations=1000, extra_activations=3, max_disturbance=42
        )
        text = r.summary()
        assert "X" in text
        assert "0.3000%" in text
        assert "42" in text
