"""Hypothesis properties of the fused engine's per-cell state.

The fused deciders mirror each mitigation's tables with batched /
vectorised updates; these properties pin the structural invariants the
bit-exact differential suite cannot name individually:

* weight-table normalisation -- every probability a TiVaPRoMi lane
  computes or caches stays in ``[0, 1]`` whatever the activation stream;
* history-FIFO eviction order -- the insertion-ordered dict mirroring
  the paper's FIFO history table evicts exactly the oldest entry and
  never exceeds capacity;
* counter-table monotonicity -- CaPRoMi counter entries only grow
  between refreshes, locks never release, drops never decrease, and the
  TWiCe lifetime counters stay strictly below the trigger threshold;
* cell slicing -- any cell of a fused grid equals a solo fast-engine
  run with the same (technique, seed, pbase).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import small_test_config
from repro.mitigations.registry import (
    make_factory,
    make_mitigation,
    technique_names,
)
from repro.sim.fast_engine import run_simulation_fast
from repro.sim.fused_engine import (
    _FusedCaPRoMiDecider,
    _FusedTiVaDecider,
    _FusedTWiCeDecider,
    grid_cells,
)
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace
from repro.traces.workload import WorkloadParams

CONFIG = small_test_config()
ROWS = CONFIG.geometry.rows_per_bank

#: one batched decision: activate ``row`` ``count`` times in ``interval``
runs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ROWS - 1),  # row
        st.integers(min_value=0, max_value=3),         # interval step
        st.integers(min_value=1, max_value=12),        # run length
    ),
    min_size=1,
    max_size=60,
)

tiva_techniques = st.sampled_from(["LiPRoMi", "LoPRoMi", "LoLiPRoMi"])


def _drive(decider, stream):
    """Feed a Hypothesis run stream; yield after every decision."""
    interval = 0
    for row, step, count in stream:
        interval += step
        decider.decide_run(row, interval, count)
        yield interval


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(technique=tiva_techniques, seed=st.integers(0, 50), stream=runs)
def test_weight_table_normalisation(technique, seed, stream):
    """Every cached slot probability and every live query is in [0, 1]."""
    decider = _FusedTiVaDecider(
        make_mitigation(technique, CONFIG, bank=0, seed=seed)
    )
    for interval in _drive(decider, stream):
        assert all(0.0 <= p <= 1.0 for p in decider._slot_p.values())
        for row, _, _ in stream[:5]:
            assert 0.0 <= decider._probability(row, interval) <= 1.0


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(technique=tiva_techniques, seed=st.integers(0, 50), stream=runs)
def test_history_fifo_eviction_order(technique, seed, stream):
    """The history table is a capacity-bounded FIFO: re-triggering a
    resident row updates it in place, inserting a new row at capacity
    evicts exactly the oldest resident."""
    decider = _FusedTiVaDecider(
        make_mitigation(technique, CONFIG, bank=0, seed=seed)
    )
    capacity = decider.capacity
    model: dict = {}
    interval = 0
    for row, step, _ in stream:
        interval += step
        decider._record_trigger(row, interval)
        if row in model:
            model[row] = interval % decider.refint
        else:
            if len(model) >= capacity:
                del model[next(iter(model))]
            model[row] = interval % decider.refint
        assert len(decider.table) <= capacity
        assert list(decider.table.items()) == list(model.items())


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50), stream=runs)
def test_counter_table_monotonicity(seed, stream):
    """Between refreshes, a resident CaPRoMi counter never decreases, a
    locked entry never unlocks (and is never evicted), and the drop
    counter never decreases."""
    decider = _FusedCaPRoMiDecider(
        make_mitigation("CaPRoMi", CONFIG, bank=0, seed=seed)
    )
    counters = decider.mitigation.counters
    snapshot: dict = {}
    dropped = 0
    for _ in _drive(decider, stream):
        present = {entry.row: entry for entry in counters.entries()}
        assert len(present) <= counters.capacity
        for row in list(snapshot):
            if row not in present:
                # only unlocked entries are evictable
                assert not snapshot[row][1]
                del snapshot[row]
        for row, entry in present.items():
            previous = snapshot.get(row)
            if previous is not None:
                count_before, locked_before = previous
                assert entry.count >= count_before
                assert entry.locked or not locked_before
            if entry.locked:
                assert entry.count >= counters.lock_threshold
            snapshot[row] = (entry.count, entry.locked)
        assert counters.dropped >= dropped
        dropped = counters.dropped


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50), stream=runs)
def test_twice_counters_stay_below_threshold(seed, stream):
    """The TWiCe bulk update preserves the fast engine's invariant:
    stored lifetime counts are always strictly below the trigger
    threshold (a count reaching it fires and resets inside the run)."""
    decider = _FusedTWiCeDecider(
        make_mitigation("TWiCe", CONFIG, bank=0, seed=seed)
    )
    threshold = decider.mitigation.trigger_threshold
    for _ in _drive(decider, stream):
        table = decider.mitigation._table
        assert all(entry.count < threshold for entry in table.values())


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    technique=st.sampled_from(technique_names()),
    seed=st.integers(min_value=0, max_value=100),
    rate=st.integers(min_value=1, max_value=60),
    aggressor=st.integers(min_value=1, max_value=ROWS - 2),
)
def test_fused_cell_slice_equals_solo_fast_run(
    technique, seed, rate, aggressor
):
    """Slicing a fused grid at any cell gives exactly the solo fast
    engine's result for that (technique, seed, pbase)."""
    from repro.sim.fused_engine import run_simulation_grid

    trace = build_trace(
        CONFIG,
        16,
        benign_params=WorkloadParams(avg_acts_per_interval=8),
        attacks=[
            AttackSpec(
                bank=0, aggressors=(aggressor,), acts_per_interval=rate,
                name="prop",
            )
        ],
        seed=seed,
    ).materialize()
    cells = grid_cells(
        [technique, None], (seed, seed + 1),
        pbase_scales=(1.0, 2.0), config=CONFIG,
    )
    results = run_simulation_grid(CONFIG, trace, cells)
    for cell, result in zip(cells, results):
        cell_config = cell.config or CONFIG
        solo = run_simulation_fast(
            cell_config, trace,
            make_factory(cell.technique) if cell.technique else None,
            seed=cell.seed,
        )
        assert solo.as_dict() == result.as_dict()
