"""Tests for the parallel campaign runner."""

import pytest

from repro.config import small_test_config
from repro.sim.parallel import CampaignJob, _run_job, run_campaign


class TestJob:
    def test_job_is_picklable(self):
        import pickle

        job = CampaignJob(
            config=small_test_config(),
            technique="PARA",
            seed=0,
            total_intervals=8,
        )
        assert pickle.loads(pickle.dumps(job)).technique == "PARA"

    def test_run_job_inline(self):
        job = CampaignJob(
            config=small_test_config(num_banks=2),
            technique="PARA",
            seed=0,
            total_intervals=8,
        )
        name, seed, result, metrics = _run_job(job)
        assert name == "PARA"
        assert result.normal_activations > 0
        assert metrics is None  # collect_metrics defaults off


class TestCampaign:
    def test_inline_campaign_aggregates(self):
        config = small_test_config(num_banks=2)
        aggregates = run_campaign(
            config,
            total_intervals=8,
            techniques=("PARA", "TWiCe"),
            seeds=(0, 1),
            include_unmitigated=True,
            workers=0,
        )
        assert set(aggregates) == {"none", "PARA", "TWiCe"}
        assert len(aggregates["PARA"].results) == 2

    def test_parallel_matches_inline(self):
        config = small_test_config(num_banks=2)
        kwargs = dict(
            total_intervals=8, techniques=("PARA",), seeds=(0, 1)
        )
        inline = run_campaign(config, workers=0, **kwargs)
        pooled = run_campaign(config, workers=2, **kwargs)
        inline_extras = sorted(
            result.extra_activations for result in inline["PARA"].results
        )
        pooled_extras = sorted(
            result.extra_activations for result in pooled["PARA"].results
        )
        assert inline_extras == pooled_extras

    def test_workload_kwargs_forwarded(self):
        config = small_test_config(num_banks=2)
        aggregates = run_campaign(
            config,
            total_intervals=8,
            techniques=("PARA",),
            seeds=(0,),
            workers=0,
            max_aggressors=5,
        )
        result = aggregates["PARA"].results[0]
        assert result.normal_activations > 0
