"""Tests for the parallel campaign runner."""

import pytest

from repro.config import small_test_config
from repro.sim.parallel import CampaignJob, _run_job, parallel_map, run_campaign


def _square(value):
    return value * value


class TestJob:
    def test_job_is_picklable(self):
        import pickle

        job = CampaignJob(
            config=small_test_config(),
            technique="PARA",
            seed=0,
            total_intervals=8,
        )
        assert pickle.loads(pickle.dumps(job)).technique == "PARA"

    def test_run_job_inline(self):
        job = CampaignJob(
            config=small_test_config(num_banks=2),
            technique="PARA",
            seed=0,
            total_intervals=8,
        )
        name, seed, result, metrics, spans = _run_job(job)
        assert name == "PARA"
        assert result.normal_activations > 0
        assert metrics is None  # collect_metrics defaults off
        assert spans is None  # collect_spans defaults off


class TestCampaign:
    def test_inline_campaign_aggregates(self):
        config = small_test_config(num_banks=2)
        aggregates = run_campaign(
            config,
            total_intervals=8,
            techniques=("PARA", "TWiCe"),
            seeds=(0, 1),
            include_unmitigated=True,
            workers=0,
        )
        assert set(aggregates) == {"none", "PARA", "TWiCe"}
        assert len(aggregates["PARA"].results) == 2

    def test_parallel_matches_inline(self):
        config = small_test_config(num_banks=2)
        kwargs = dict(
            total_intervals=8, techniques=("PARA",), seeds=(0, 1)
        )
        inline = run_campaign(config, workers=0, **kwargs)
        pooled = run_campaign(config, workers=2, **kwargs)
        inline_extras = sorted(
            result.extra_activations for result in inline["PARA"].results
        )
        pooled_extras = sorted(
            result.extra_activations for result in pooled["PARA"].results
        )
        assert inline_extras == pooled_extras

    def test_workload_kwargs_forwarded(self):
        config = small_test_config(num_banks=2)
        aggregates = run_campaign(
            config,
            total_intervals=8,
            techniques=("PARA",),
            seeds=(0,),
            workers=0,
            max_aggressors=5,
        )
        result = aggregates["PARA"].results[0]
        assert result.normal_activations > 0


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], workers=0) == [9, 1, 4]

    def test_pool_matches_inline(self):
        items = list(range(23))
        inline = parallel_map(_square, items, workers=0)
        pooled = parallel_map(_square, items, workers=2, chunk_size=4)
        assert pooled == inline

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=0) == []
        assert parallel_map(_square, [], workers=2) == []

    def test_progress_reports_monotonic_completion(self):
        seen = []
        parallel_map(_square, list(range(10)), workers=2, chunk_size=3,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (10, 10)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_inline_progress_fires_per_item(self):
        seen = []
        parallel_map(_square, [1, 2, 3], workers=0,
                     progress=lambda done, total: seen.append(done))
        assert seen == [1, 2, 3]


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        from repro.sim.parallel import RetryPolicy

        policy = RetryPolicy(
            max_retries=5, backoff_base=0.5, backoff_factor=2.0,
            backoff_cap=3.0,
        )
        assert [policy.delay(r) for r in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 3.0]

    def test_rejects_unknown_failure_mode(self):
        from repro.sim.parallel import RetryPolicy

        with pytest.raises(ValueError, match="on_failure"):
            RetryPolicy(on_failure="retry-forever")


class TestFaultTolerance:
    """FaultInjector-driven retry, backoff, and degraded-shard handling."""

    def campaign(self, injector, retry, metrics=None, sleep=None, workers=0):
        from repro.sim.parallel import run_campaign

        return run_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            techniques=("PARA", "TWiCe"),
            seeds=(0, 1),
            workers=workers,
            retry=retry,
            fault_injector=injector,
            metrics=metrics,
            sleep=sleep if sleep is not None else (lambda seconds: None),
        )

    def test_transient_error_retried_to_success(self):
        from repro.campaign.faults import FaultInjector
        from repro.sim.parallel import RetryPolicy
        from repro.telemetry.metrics import MetricsRegistry

        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "PARA", "seed": 1,
              "attempts": [0]}]
        )
        metrics = MetricsRegistry()
        aggregates = self.campaign(
            injector, RetryPolicy(max_retries=2), metrics=metrics
        )
        assert not aggregates.failures
        assert len(aggregates["PARA"].results) == 2
        counters = metrics.as_dict()["counters"]
        assert counters["campaign.shard_errors"]["value"] == 1
        assert counters["campaign.shard_retries"]["value"] == 1

    def test_backoff_uses_policy_schedule(self):
        from repro.campaign.faults import FaultInjector
        from repro.sim.parallel import RetryPolicy

        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "PARA", "seed": 0,
              "attempts": [0, 1]}]
        )
        sleeps = []
        self.campaign(
            injector,
            RetryPolicy(max_retries=2, backoff_base=0.5, backoff_factor=2.0),
            sleep=sleeps.append,
        )
        assert sleeps == [0.5, 1.0]

    def test_on_failure_raise_propagates_original_exception(self):
        from repro.campaign.faults import FaultInjector, InjectedFault
        from repro.sim.parallel import RetryPolicy

        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "TWiCe", "seed": 0}]
        )
        with pytest.raises(InjectedFault, match="TWiCe/seed=0"):
            self.campaign(
                injector, RetryPolicy(max_retries=1, on_failure="raise")
            )

    def test_on_failure_skip_records_degraded_shard(self):
        from repro.campaign.faults import FaultInjector
        from repro.sim.parallel import RetryPolicy
        from repro.telemetry.metrics import MetricsRegistry

        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "PARA", "seed": 1}]
        )
        metrics = MetricsRegistry()
        aggregates = self.campaign(
            injector,
            RetryPolicy(max_retries=2, on_failure="skip"),
            metrics=metrics,
        )
        assert aggregates.degraded
        (failure,) = aggregates.failures
        assert (failure.technique, failure.seed) == ("PARA", 1)
        assert failure.attempts == 3
        assert failure.kind == "error"
        assert aggregates["PARA"].degraded_seeds == [1]
        assert "DEGRADED" in aggregates["PARA"].summary()
        counters = metrics.as_dict()["counters"]
        assert counters["campaign.shards_degraded"]["value"] == 1
        assert counters["campaign.shards_completed"]["value"] == 3

    def test_pool_crash_retried_and_matches_inline(self):
        from repro.campaign.faults import FaultInjector
        from repro.sim.parallel import RetryPolicy, run_campaign

        injector = FaultInjector.from_rules(
            [{"mode": "crash", "technique": "PARA", "seed": 0,
              "attempts": [0]}]
        )
        kwargs = dict(
            total_intervals=8, techniques=("PARA",), seeds=(0, 1)
        )
        config = small_test_config(num_banks=2)
        pooled = run_campaign(
            config, workers=2,
            retry=RetryPolicy(max_retries=3, backoff_base=0.01),
            fault_injector=injector, **kwargs,
        )
        inline = run_campaign(config, workers=0, **kwargs)
        assert not pooled.failures
        pooled_extras = sorted(
            result.extra_activations for result in pooled["PARA"].results
        )
        inline_extras = sorted(
            result.extra_activations for result in inline["PARA"].results
        )
        assert pooled_extras == inline_extras

    def test_pool_hang_times_out_and_degrades(self):
        from repro.campaign.faults import FaultInjector
        from repro.sim.parallel import RetryPolicy, run_campaign
        from repro.telemetry.metrics import MetricsRegistry

        injector = FaultInjector.from_rules(
            [{"mode": "hang", "technique": "PARA", "seed": 0, "seconds": 60}]
        )
        metrics = MetricsRegistry()
        aggregates = run_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            techniques=("PARA",),
            seeds=(0,),
            workers=1,
            retry=RetryPolicy(
                max_retries=0, shard_timeout=0.3, on_failure="skip"
            ),
            fault_injector=injector,
            metrics=metrics,
        )
        (failure,) = aggregates.failures
        assert failure.kind == "timeout"
        counters = metrics.as_dict()["counters"]
        assert counters["campaign.shard_timeouts"]["value"] == 1
