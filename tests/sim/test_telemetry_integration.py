"""Telemetry threaded through the engines: transparency and content.

Two invariants:

* **transparency** -- enabling a tracer + metrics registry must leave
  the ``SimResult`` field-for-field unchanged on *both* engines (the
  hooks only observe; they never draw from the RNG streams);
* **content** -- the emitted stream is well-formed: known kinds,
  non-decreasing ``time_ns``, and metric counters that reconcile with
  the result's own totals.

The two engines' event streams legitimately differ (the fast engine
emits ``rng-block`` events and batches skipped-interval rollovers), so
only the result and the reconcilable aggregates are compared.
"""

from __future__ import annotations

import pytest

from repro.config import small_test_config
from repro.mitigations.registry import make_factory
from repro.sim.engine import get_engine
from repro.telemetry import (
    EVENT_KINDS,
    NullTracer,
    Profiler,
)
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace, paper_mixed_workload

from tests.harness import assert_telemetry_transparent

CONFIG = small_test_config()
TOTAL_INTERVALS = 48


def _mixed(seed):
    return lambda: paper_mixed_workload(
        CONFIG, total_intervals=TOTAL_INTERVALS, seed=seed
    )


def _flooding(seed):
    row = CONFIG.geometry.rows_per_bank // 2
    return lambda: build_trace(
        CONFIG,
        TOTAL_INTERVALS,
        attacks=(
            AttackSpec(bank=0, aggressors=(row,), acts_per_interval=40,
                       start_interval=3),
        ),
        seed=seed,
    )


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize(
    "technique", ["LoLiPRoMi", "PARA", "TWiCe", None], ids=str
)
def test_telemetry_is_transparent(engine, technique):
    factory = make_factory(technique) if technique else None
    assert_telemetry_transparent(
        CONFIG, _mixed(1), factory, seed=1, engine=engine
    )


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_telemetry_transparent_on_flooding_with_skips(engine):
    # flooding traces exercise the fast engine's interval-skip path
    assert_telemetry_transparent(
        CONFIG, _flooding(2), make_factory("LiPRoMi"), seed=2, engine=engine
    )


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_event_stream_is_well_formed(engine):
    _result, tracer, _metrics = assert_telemetry_transparent(
        CONFIG, _mixed(0), make_factory("LoLiPRoMi"), seed=0, engine=engine
    )
    assert tracer.events, "an active run must emit events"
    last_time = None
    for event in tracer.events:
        assert event["kind"] in EVENT_KINDS
        if last_time is not None:
            assert event["time_ns"] >= last_time, (
                f"time went backwards: {event}"
            )
        last_time = event["time_ns"]


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_metrics_reconcile_with_result(engine):
    result, tracer, metrics = assert_telemetry_transparent(
        CONFIG, _mixed(3), make_factory("LoLiPRoMi"), seed=3, engine=engine
    )
    counters = metrics.counters
    assert counters["activations"].value == result.normal_activations
    assert counters["attack_activations"].value == result.attack_activations
    assert counters["triggers"].value == result.mitigation_triggers
    assert counters["mitigating_refreshes"].value == result.mitigation_triggers
    assert counters["extra_activations"].value == result.extra_activations
    assert counters["fp_extra_activations"].value == result.fp_extra_activations
    assert counters["intervals"].value == result.intervals_simulated
    assert len(tracer.of_kind("trigger")) == result.mitigation_triggers
    assert metrics.histograms["trigger_weight"].count == result.mitigation_triggers


def test_engines_agree_on_aggregate_counters():
    """Per-event streams differ, but the reconcilable totals match."""
    outcomes = {}
    for engine in ("reference", "fast"):
        _result, _tracer, metrics = assert_telemetry_transparent(
            CONFIG, _mixed(4), make_factory("LoLiPRoMi"), seed=4,
            engine=engine,
        )
        outcomes[engine] = {
            name: counter.value
            for name, counter in metrics.counters.items()
            if not name.startswith("rng_")  # fast-engine-only accounting
        }
    assert outcomes["reference"] == outcomes["fast"]


def test_fast_engine_reports_rng_blocks():
    _result, tracer, metrics = assert_telemetry_transparent(
        CONFIG, _flooding(1), make_factory("LoLiPRoMi"), seed=1, engine="fast"
    )
    blocks = tracer.of_kind("rng-block")
    assert blocks, "bulk draws must be accounted"
    assert metrics.counters["rng_draws"].value == sum(
        event["count"] for event in blocks
    )


def test_null_tracer_is_equivalent_to_no_tracer():
    run = get_engine("fast")
    bare = run(CONFIG, _mixed(0)(), make_factory("PARA"), seed=0)
    nulled = run(
        CONFIG, _mixed(0)(), make_factory("PARA"), seed=0,
        tracer=NullTracer(),
    )
    assert bare.as_dict() == nulled.as_dict()


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_profiler_sections_cover_the_run(engine):
    profiler = Profiler()
    run = get_engine(engine)
    run(CONFIG, _mixed(0)(), make_factory("PARA"), seed=0, profiler=profiler)
    assert set(profiler.sections) == {
        "engine:setup", "engine:replay", "engine:drain"
    }
    assert profiler.total_seconds > 0.0


def test_history_events_fire_under_pressure():
    """A tiny history table forces hits and evictions."""
    from dataclasses import replace

    config = replace(small_test_config(), history_table_entries=2)
    row = config.geometry.rows_per_bank // 2
    trace = lambda: build_trace(  # noqa: E731
        config,
        TOTAL_INTERVALS,
        attacks=(
            AttackSpec(bank=0, aggressors=(row, row + 2, row + 4, row + 6),
                       acts_per_interval=120, start_interval=1),
        ),
        seed=0,
    )
    for engine in ("reference", "fast"):
        _result, tracer, metrics = assert_telemetry_transparent(
            config, trace, make_factory("LoLiPRoMi"), seed=0, engine=engine
        )
        assert metrics.counters["history_evictions"].value == len(
            tracer.of_kind("history-evict")
        )
        assert metrics.counters["history_evictions"].value > 0, engine
