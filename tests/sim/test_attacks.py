"""Tests for the attack experiment suite."""

import pytest

from repro.config import small_test_config
from repro.sim.attacks import (
    FloodingOutcome,
    flooding_experiment,
    multi_aggressor_experiment,
    vulnerability_verdicts,
)


class TestFloodingOutcome:
    def test_median_over_triggered(self):
        outcome = FloodingOutcome("X", 0, 100)
        outcome.acts_to_first_trigger = [100, 300, 200]
        assert outcome.median_acts == 200

    def test_median_none_when_majority_missing(self):
        outcome = FloodingOutcome("X", 0, 100)
        outcome.acts_to_first_trigger = [100, None, None]
        assert outcome.median_acts is None

    def test_median_none_when_no_seed_triggered(self):
        # regression: median([]) used to raise StatisticsError because
        # the majority check passes vacuously for an empty outcome
        outcome = FloodingOutcome("X", 0, 100)
        assert outcome.median_acts is None
        assert not outcome.below_safety_margin
        outcome.acts_to_first_trigger = [None, None]
        assert outcome.median_acts is None
        assert not outcome.below_safety_margin

    def test_safety_margin_check(self):
        outcome = FloodingOutcome("X", 0, 100)
        outcome.acts_to_first_trigger = [10_000]
        assert outcome.below_safety_margin
        outcome.acts_to_first_trigger = [80_000]
        assert not outcome.below_safety_margin


class TestFloodingExperiment:
    def test_rejects_bad_start_weight(self):
        config = small_test_config()
        with pytest.raises(ValueError):
            flooding_experiment(config, "LiPRoMi", start_weight=64)

    def test_lopromi_triggers_and_reports(self):
        config = small_test_config()
        outcome = flooding_experiment(
            config, "LoPRoMi", start_weight=0, seeds=(0, 1, 2), max_windows=2
        )
        assert outcome.technique == "LoPRoMi"
        assert len(outcome.acts_to_first_trigger) == 3

    def test_higher_start_weight_triggers_sooner(self):
        """The time-varying core property: a row long past its refresh
        has a higher probability, so the flood is caught earlier."""
        config = small_test_config()
        late = flooding_experiment(
            config, "LiPRoMi", start_weight=48, seeds=range(8), max_windows=1
        )
        early = flooding_experiment(
            config, "LiPRoMi", start_weight=0, seeds=range(8), max_windows=1
        )
        assert late.median_acts is not None
        if early.median_acts is not None:
            assert late.median_acts < early.median_acts

    def test_rate_recorded(self):
        config = small_test_config()
        outcome = flooding_experiment(
            config, "LoPRoMi", rate=50, seeds=(0,), max_windows=1
        )
        assert outcome.rate == 50


class TestMultiAggressor:
    def test_points_for_each_count(self):
        config = small_test_config(flip_threshold=10_000)
        points = multi_aggressor_experiment(
            config, "MRLoc", aggressor_counts=(1, 4), windows=1
        )
        assert [point.aggressors for point in points] == [1, 4]
        assert all(point.total_acts > 0 for point in points)

    def test_mrloc_protection_decays_with_aggressors(self):
        """The queue-thrash vulnerability: more aggressors -> fewer
        mitigating refreshes per activation budget."""
        config = small_test_config(flip_threshold=10_000)
        points = multi_aggressor_experiment(
            config, "MRLoc", aggressor_counts=(1, 16), windows=2
        )
        by_count = {point.aggressors: point for point in points}
        assert (
            by_count[16].triggers_per_half_threshold
            <= by_count[1].triggers_per_half_threshold
        )


class TestTreeSaturation:
    def test_decoys_keep_tree_coarse(self):
        from repro.sim.attacks import tree_saturation_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=40_000)
        outcome = tree_saturation_experiment(config, node_budget=64)
        # alone, the hammer is isolated down to a single row
        assert outcome.focused_finest == 1
        assert outcome.focused_coarse_triggers == 0
        # with decoys the node budget is spent elsewhere
        assert outcome.saturation_succeeded
        assert outcome.saturated_coarse_triggers > 0

    def test_big_budget_defeats_saturation(self):
        from repro.sim.attacks import tree_saturation_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=40_000)
        outcome = tree_saturation_experiment(config, node_budget=4096)
        assert outcome.saturated_finest == 1


class TestVerdicts:
    def test_matches_paper_column(self):
        verdicts = vulnerability_verdicts()
        vulnerable = {name for name, (flag, _) in verdicts.items() if flag}
        assert vulnerable == {"PARA", "MRLoc", "LiPRoMi", "ProHit"}

    def test_reasons_cite_attacks(self):
        verdicts = vulnerability_verdicts(["LiPRoMi"])
        flag, reason = verdicts["LiPRoMi"]
        assert flag
        assert "flood" in reason.lower()

    def test_subset_selection(self):
        verdicts = vulnerability_verdicts(["TWiCe", "CRA"])
        assert set(verdicts) == {"TWiCe", "CRA"}
        assert all(not flag for flag, _ in verdicts.values())

    def test_frontier_appends_empirical_worst_case(self):
        from repro.adversary import AdversaryFrontier, FrontierPoint

        frontier = AdversaryFrontier("LiPRoMi")
        frontier.update([FrontierPoint(
            genome={}, name="mut:align_phase.deadbeef",
            acts_per_window=5280, fitness=1411.0, escape_rate=0.0,
            generation=4,
        )])
        verdicts = vulnerability_verdicts(
            ["LiPRoMi", "TWiCe"], frontiers={"LiPRoMi": frontier}
        )
        _, reason = verdicts["LiPRoMi"]
        assert "worst discovered" in reason
        assert "mut:align_phase.deadbeef" in reason
        assert "1,411" in reason
        # techniques without a frontier keep their analytic reason
        assert "worst discovered" not in verdicts["TWiCe"][1]


class TestRemappedAdjacency:
    """Section II: remapped rows defeat address-based mitigations."""

    def test_act_n_techniques_survive_remapping(self):
        from repro.sim.attacks import remapped_adjacency_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=30_000)
        outcomes = remapped_adjacency_experiment(
            config,
            techniques=("PARA", "ProHit", "MRLoc",
                        "LoLiPRoMi", "TWiCe", "CaPRoMi"),
        )
        # address-based mitigations refresh the wrong rows
        for name in ("PARA", "ProHit", "MRLoc"):
            assert not outcomes[name].protected, name
        # act_n resolves adjacency inside the memory
        for name in ("LoLiPRoMi", "TWiCe", "CaPRoMi"):
            assert outcomes[name].protected, name

    def test_act_n_keeps_victim_far_from_threshold(self):
        from repro.sim.attacks import remapped_adjacency_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=30_000)
        outcomes = remapped_adjacency_experiment(
            config, techniques=("PARA", "TWiCe")
        )
        assert (
            outcomes["TWiCe"].victim_peak_disturbance
            < outcomes["PARA"].victim_peak_disturbance
        )


class TestHalfDouble:
    """Beyond-paper extension: distance-2 (Half-Double) coupling."""

    def test_no_coupling_reproduces_paper_model(self):
        from repro.sim.attacks import half_double_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=2_000)
        points = half_double_experiment(config, distance2_rates=(0.0,))
        assert points[0].direct_flips == 0
        assert points[0].distance2_flips == 0

    def test_strong_coupling_flips_distance2_rows_only(self):
        from repro.sim.attacks import half_double_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=2_000)
        points = half_double_experiment(config, distance2_rates=(0.3,))
        assert points[0].direct_flips == 0      # act_n still covers distance 1
        assert points[0].distance2_flips > 0    # but nothing covers distance 2

    def test_disturbance_grows_with_coupling(self):
        from repro.sim.attacks import half_double_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=50_000)
        points = half_double_experiment(
            config, distance2_rates=(0.0, 0.2), windows=1
        )
        assert points[1].max_disturbance > points[0].max_disturbance
