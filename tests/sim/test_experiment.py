"""Tests for multi-seed experiment aggregation."""

import pytest

from repro.config import small_test_config
from repro.sim.experiment import (
    TechniqueAggregate,
    compare_techniques,
    default_trace_factory,
    run_technique,
)
from repro.sim.metrics import SimResult
from repro.traces.attacker import double_sided
from repro.traces.mixer import build_trace


def trace_factory(config, intervals=24):
    def factory(seed):
        # victim 300 is refreshed after the trace horizon, so the
        # unmitigated attack accumulates for the whole trace
        attack = double_sided(
            config.geometry, bank=0, victim=300, acts_per_interval=120
        )
        return build_trace(
            config, total_intervals=intervals, attacks=[attack], seed=seed
        )

    return factory


class TestAggregate:
    def make(self):
        aggregate = TechniqueAggregate(technique="T")
        for seed, (extra, fp) in enumerate([(10, 2), (20, 4), (30, 6)]):
            aggregate.results.append(
                SimResult(
                    technique="T",
                    seed=seed,
                    normal_activations=10_000,
                    extra_activations=extra,
                    fp_extra_activations=fp,
                    table_bytes=64,
                    flip_threshold=1000,
                )
            )
        return aggregate

    def test_means(self):
        aggregate = self.make()
        assert aggregate.overhead_mean == pytest.approx(0.2)
        assert aggregate.fpr_mean == pytest.approx(0.04)

    def test_std(self):
        assert self.make().overhead_std == pytest.approx(0.1)

    def test_cell_format(self):
        cell = self.make().overhead_cell()
        assert cell.startswith("(0.2000 +- 0.1000")

    def test_flip_aggregation(self):
        aggregate = self.make()
        assert aggregate.total_flips == 0
        assert not aggregate.any_attack_succeeded

    def test_table_bytes_from_first_result(self):
        assert self.make().table_bytes == 64

    def test_summary_text(self):
        assert "T" in self.make().summary()

    def test_single_seed_std_is_zero(self):
        """Regression: a single-seed campaign must report sigma = 0.0
        (and a well-formed Table III cell), not raise."""
        aggregate = TechniqueAggregate(technique="T")
        aggregate.results.append(
            SimResult(
                technique="T",
                seed=0,
                normal_activations=10_000,
                extra_activations=10,
                fp_extra_activations=2,
                flip_threshold=1000,
            )
        )
        assert aggregate.overhead_std == 0.0
        assert aggregate.overhead_mean == pytest.approx(0.1)
        assert "+- 0.0000" in aggregate.overhead_cell()

    def test_empty_aggregate_is_inert(self):
        """No seeds run yet: every statistic degrades to zero."""
        aggregate = TechniqueAggregate(technique="T")
        assert aggregate.overhead_mean == 0.0
        assert aggregate.overhead_std == 0.0
        assert aggregate.fpr_mean == 0.0
        assert aggregate.total_flips == 0
        assert aggregate.table_bytes == 0
        assert aggregate.min_protection_margin == 0.0
        assert aggregate.wall_seconds == 0.0

    def test_wall_seconds_sums_across_seeds(self):
        aggregate = self.make()
        for result in aggregate.results:
            result.wall_seconds = 0.5
        assert aggregate.wall_seconds == pytest.approx(1.5)


class TestRunTechnique:
    def test_one_result_per_seed(self):
        config = small_test_config(flip_threshold=2_000)
        aggregate = run_technique(
            config, "PARA", trace_factory(config), seeds=(0, 1, 2)
        )
        assert len(aggregate.results) == 3
        assert aggregate.technique == "PARA"

    def test_none_runs_unmitigated(self):
        config = small_test_config(flip_threshold=2_000)
        aggregate = run_technique(config, None, trace_factory(config), seeds=(0,))
        assert aggregate.technique == "none"
        assert aggregate.results[0].extra_activations == 0

    def test_kwargs_forwarded(self):
        config = small_test_config(flip_threshold=2_000)
        strong = run_technique(
            config, "PARA", trace_factory(config), seeds=(0,), probability=0.05
        )
        weak = run_technique(
            config, "PARA", trace_factory(config), seeds=(0,), probability=0.001
        )
        assert strong.overhead_mean > weak.overhead_mean


class TestCompare:
    def test_compare_subset(self):
        config = small_test_config(flip_threshold=2_000)
        comparison = compare_techniques(
            config,
            trace_factory(config),
            techniques=("PARA", "TWiCe"),
            seeds=(0, 1),
            include_unmitigated=True,
        )
        assert set(comparison) == {"none", "PARA", "TWiCe"}
        assert comparison["none"].total_flips > 0
        assert comparison["PARA"].total_flips == 0
        assert comparison["TWiCe"].total_flips == 0

    def test_paired_traces_across_techniques(self):
        """All techniques must see identical per-seed traces."""
        config = small_test_config(flip_threshold=2_000)
        comparison = compare_techniques(
            config, trace_factory(config), techniques=("PARA", "CRA"), seeds=(0,)
        )
        assert (
            comparison["PARA"].results[0].normal_activations
            == comparison["CRA"].results[0].normal_activations
        )


class TestDefaultFactory:
    def test_builds_paper_workload(self):
        config = small_test_config(num_banks=2)
        factory = default_trace_factory(config, total_intervals=16)
        trace = factory(0).materialize()
        assert trace.count() > 0
        assert trace.meta.total_intervals == 16
