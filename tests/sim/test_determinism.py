"""Seed determinism: identical seeds must reproduce identical results.

The whole reproduction rests on the derived-seed RNG discipline
(:mod:`repro.rng`): a (technique, seed, trace) triple must map to one
result, bit for bit, no matter when or how often it runs.  These tests
pin that for both engines and for the campaign runner.
"""

from __future__ import annotations

import pytest

from repro.config import small_test_config
from repro.mitigations.registry import make_factory, technique_names
from repro.sim.engine import get_engine
from repro.sim.parallel import run_campaign
from repro.traces.mixer import paper_mixed_workload

CONFIG = small_test_config()
TOTAL_INTERVALS = 24


def _trace(seed: int):
    return paper_mixed_workload(CONFIG, total_intervals=TOTAL_INTERVALS, seed=seed)


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("technique", technique_names() + [None], ids=str)
def test_run_simulation_is_seed_deterministic(technique, engine):
    run = get_engine(engine)
    factory = make_factory(technique) if technique else None
    first = run(CONFIG, _trace(5), factory, seed=5)
    second = run(CONFIG, _trace(5), factory, seed=5)
    assert first.as_dict() == second.as_dict()


@pytest.mark.parametrize("technique", ["PARA", "LoLiPRoMi"])
def test_different_seeds_usually_differ(technique):
    """Sanity check that the determinism tests are not vacuous: the
    probabilistic techniques draw different decisions under different
    seeds (the trace also differs)."""
    run = get_engine("reference")
    factory = make_factory(technique)
    a = run(CONFIG, _trace(0), factory, seed=0)
    b = run(CONFIG, _trace(1), factory, seed=1)
    assert a.as_dict() != b.as_dict()


def _campaign(**kwargs):
    return run_campaign(
        CONFIG,
        total_intervals=TOTAL_INTERVALS,
        techniques=["PARA", "LiPRoMi", "CaPRoMi"],
        seeds=(0, 1),
        include_unmitigated=True,
        workers=0,
        **kwargs,
    )


def test_run_campaign_is_seed_deterministic():
    first = _campaign()
    second = _campaign()
    assert first.keys() == second.keys()
    for name in first:
        a = [result.as_dict() for result in first[name].results]
        b = [result.as_dict() for result in second[name].results]
        assert a == b, name


def test_run_campaign_memoized_traces_match_regenerated():
    """Sharing one serialised trace per seed must not change anything
    relative to each worker regenerating its own trace."""
    memoized = _campaign(memoize_traces=True)
    regenerated = _campaign(memoize_traces=False)
    for name in memoized:
        a = [result.as_dict() for result in memoized[name].results]
        b = [result.as_dict() for result in regenerated[name].results]
        assert a == b, name
