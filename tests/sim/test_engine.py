"""Tests for the trace-driven simulation engine."""

import pytest

from repro.config import small_test_config
from repro.mitigations.registry import make_factory
from repro.sim.engine import run_simulation
from repro.traces.attacker import double_sided, flooding
from repro.traces.mixer import build_trace
from repro.traces.record import Trace, TraceMeta, TraceRecord


def attack_trace(config, intervals=32, rate=100, victim=300):
    # victim 300 sits in refresh group 37, past the default 32-interval
    # horizon, so its disturbance accumulates for the whole trace
    attack = double_sided(
        config.geometry, bank=0, victim=victim, acts_per_interval=rate
    )
    return build_trace(config, total_intervals=intervals, attacks=[attack])


class TestIntervalAccounting:
    def test_all_intervals_ticked_even_with_sparse_trace(self):
        config = small_test_config()
        meta = TraceMeta(total_intervals=10, interval_ns=7800, num_banks=1)
        trace = Trace(meta=meta, records=[TraceRecord(100, 0, 5)])
        result = run_simulation(config, trace, None)
        assert result.intervals_simulated == 10

    def test_empty_trace_still_refreshes(self):
        config = small_test_config()
        meta = TraceMeta(total_intervals=5, interval_ns=7800, num_banks=1)
        result = run_simulation(config, Trace(meta=meta, records=[]), None)
        assert result.intervals_simulated == 5
        assert result.normal_activations == 0

    def test_record_interval_derived_from_time(self):
        config = small_test_config()
        meta = TraceMeta(total_intervals=4, interval_ns=7800, num_banks=1)
        # one record in interval 2
        trace = Trace(meta=meta, records=[TraceRecord(2 * 7800 + 5, 0, 5)])
        result = run_simulation(config, trace, None)
        assert result.normal_activations == 1


class TestUnmitigated:
    def test_sustained_attack_flips_without_mitigation(self):
        config = small_test_config(flip_threshold=2_000)
        result = run_simulation(config, attack_trace(config), None)
        assert result.attack_succeeded
        assert result.max_disturbance >= 2_000
        assert result.protection_margin == 0.0

    def test_attack_activations_counted(self):
        config = small_test_config(flip_threshold=2_000)
        result = run_simulation(config, attack_trace(config), None)
        assert result.attack_activations == result.normal_activations > 0


class TestMitigated:
    @pytest.mark.parametrize(
        "technique",
        ["PARA", "ProHit", "MRLoc", "TWiCe", "CRA",
         "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"],
    )
    def test_every_technique_prevents_the_flip(self, technique):
        """Section IV reliability claim at a faithfully scaled geometry.

        The protection dynamics of the probabilistic variants depend on
        the ratio between the flip threshold and the re-trigger gap, so
        this test uses a 512-interval window with a threshold scaled to
        keep that ratio in the paper's regime (see DESIGN.md).
        """
        config = small_test_config(rows_per_bank=4096, flip_threshold=40_000)
        trace = attack_trace(config, intervals=512, rate=165, victim=100)
        unprotected = run_simulation(config, trace, None, seed=3)
        assert unprotected.attack_succeeded
        result = run_simulation(
            config,
            attack_trace(config, intervals=512, rate=165, victim=100),
            make_factory(technique),
            seed=3,
        )
        assert not result.attack_succeeded, technique

    def test_mitigation_produces_extras(self):
        config = small_test_config(flip_threshold=2_000)
        result = run_simulation(
            config, attack_trace(config), make_factory("PARA"), seed=1
        )
        assert result.extra_activations > 0
        assert result.overhead_pct > 0
        assert result.technique == "PARA"

    def test_seeds_change_probabilistic_outcomes(self):
        config = small_test_config(flip_threshold=2_000)
        extras = {
            run_simulation(
                config, attack_trace(config), make_factory("PARA"), seed=seed
            ).extra_activations
            for seed in range(4)
        }
        assert len(extras) > 1

    def test_deterministic_given_seed(self):
        config = small_test_config(flip_threshold=2_000)
        runs = [
            run_simulation(
                config, attack_trace(config), make_factory("LiPRoMi"), seed=5
            ).extra_activations
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestEarlyStop:
    def test_stop_after_first_trigger(self):
        config = small_test_config()
        attack = flooding(config.geometry, 0, row=1, acts_per_interval=150)
        trace = build_trace(config, total_intervals=64, attacks=[attack])
        result = run_simulation(
            config, trace, make_factory("LoPRoMi"), seed=2,
            stop_after_first_trigger=True,
        )
        assert result.first_trigger_activation is not None
        assert result.normal_activations == result.first_trigger_activation

    def test_max_activations_cap(self):
        config = small_test_config(flip_threshold=10 ** 9)
        result = run_simulation(
            config, attack_trace(config), None, max_activations=50
        )
        assert result.normal_activations == 50


class TestBookkeeping:
    def test_table_bytes_copied_from_mitigation(self):
        config = small_test_config(flip_threshold=2_000)
        result = run_simulation(
            config, attack_trace(config, intervals=4), make_factory("TWiCe")
        )
        assert result.table_bytes > 0

    def test_flip_threshold_recorded(self):
        config = small_test_config(flip_threshold=2_000)
        result = run_simulation(config, attack_trace(config, intervals=4), None)
        assert result.flip_threshold == 2_000

    def test_wall_time_positive(self):
        config = small_test_config()
        result = run_simulation(config, attack_trace(config, intervals=4), None)
        assert result.wall_seconds > 0
