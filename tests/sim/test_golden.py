"""Golden-result regression tests.

A committed fixture trace plus the expected ``SimResult`` of all nine
techniques (and the unmitigated baseline) pin the end-to-end simulation
semantics: any change to disturbance accounting, RNG discipline, or
mitigation behaviour shows up here as a concrete field-level diff.

If a change is *intentional*, regenerate the fixtures with
``PYTHONPATH=src python tests/fixtures/make_golden.py`` and explain the
semantic change in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.mitigations.registry import make_factory
from repro.sim.engine import get_engine
from repro.sim.metrics import SimResult
from repro.traces.trace_io import load_trace

from tests.fixtures.make_golden import (
    RESULTS_PATH,
    SEED,
    TRACE_PATH,
    golden_config,
)

GOLDEN = json.loads(Path(RESULTS_PATH).read_text())


def _expected(technique: str) -> dict:
    return GOLDEN["results"][technique]


@pytest.mark.parametrize("engine", ["reference", "fast", "fused"])
@pytest.mark.parametrize("technique", sorted(GOLDEN["results"]))
def test_golden_result(technique, engine):
    config = golden_config()
    trace = load_trace(TRACE_PATH)
    assert trace.count() == GOLDEN["records"]
    factory = make_factory(technique) if technique != "none" else None
    result = get_engine(engine)(config, trace, factory, seed=SEED)
    assert result.as_dict() == _expected(technique), (
        "golden drift -- if intentional, regenerate via "
        "tests/fixtures/make_golden.py"
    )


def test_golden_covers_all_techniques():
    from repro.mitigations.registry import technique_names

    assert sorted(GOLDEN["results"]) == sorted(technique_names() + ["none"])
    assert sorted(GOLDEN["campaign"]) == sorted(technique_names() + ["none"])


@pytest.mark.parametrize("engine", ["reference", "fused"])
def test_golden_campaign_aggregates(engine):
    """Canonical per-cell campaign aggregates are engine-invariant.

    The fused engine runs the campaign as whole-grid blocks (one trace
    decode per seed); every per-(technique, seed) cell must still equal
    the committed per-cell reference aggregates field-for-field.
    """
    from tests.fixtures.make_golden import CAMPAIGN_SEEDS, golden_campaign

    campaign = golden_campaign(engine)
    assert sorted(campaign) == sorted(GOLDEN["campaign"])
    for technique, aggregate in campaign.items():
        assert [r.seed for r in aggregate.results] == list(CAMPAIGN_SEEDS)
        assert [
            result.as_dict() for result in aggregate.results
        ] == GOLDEN["campaign"][technique], (
            f"campaign golden drift for {technique!r} on the {engine} "
            "engine -- if intentional, regenerate via "
            "tests/fixtures/make_golden.py"
        )


def test_golden_roundtrips_through_from_dict():
    """The serialised golden results reconstruct into SimResult objects."""
    for technique, payload in GOLDEN["results"].items():
        result = SimResult.from_dict(payload)
        assert result.as_dict() == payload
        assert result.technique == (technique if technique != "none" else "none")
