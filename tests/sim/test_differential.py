"""Differential equivalence: fast engine vs reference engine.

Every registered technique (plus the unmitigated baseline) is replayed
by both engines over a grid of (workload, seed) points, plus the
engine-kwarg and refresh-policy variants, and the results must be
field-for-field identical.  This is the correctness spine that lets the
fast engine take shortcuts (bulk RNG draws, run batching, interval
skipping) without any risk of silent drift.
"""

from __future__ import annotations

import pytest

from repro.config import small_test_config
from repro.dram.refresh import all_policies
from repro.mitigations.registry import (
    MODERN_TECHNIQUES,
    make_factory,
    technique_names,
)
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace, paper_mixed_workload

from tests.harness import assert_engines_equivalent

CONFIG = small_test_config()
TOTAL_INTERVALS = 48
SEEDS = (0, 1, 2)
#: all nine Table III techniques plus the unmitigated baseline
TECHNIQUES = technique_names() + [None]
#: the modern tracker families (Loaded Dice, RVC, PVAC, PRAC family,
#: probabilistic tracker management)
MODERN = list(MODERN_TECHNIQUES)


def _factory(technique):
    return make_factory(technique) if technique else None


def _mixed(seed, config=CONFIG):
    """Fresh paper mixed workload (benign + ramped attacker)."""
    return lambda: paper_mixed_workload(
        config, total_intervals=TOTAL_INTERVALS, seed=seed
    )


def _flooding(seed, config=CONFIG):
    """Fresh single-aggressor flooding trace with an idle prefix."""
    row = config.geometry.rows_per_bank // 2
    return lambda: build_trace(
        config,
        TOTAL_INTERVALS,
        attacks=(
            AttackSpec(
                bank=0,
                aggressors=(row,),
                acts_per_interval=40,
                start_interval=3,
            ),
        ),
        seed=seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("technique", TECHNIQUES, ids=str)
def test_mixed_workload_equivalence(technique, seed):
    assert_engines_equivalent(CONFIG, _mixed(seed), _factory(technique), seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("technique", TECHNIQUES, ids=str)
def test_flooding_workload_equivalence(technique, seed):
    assert_engines_equivalent(
        CONFIG, _flooding(seed), _factory(technique), seed=seed
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("technique", MODERN)
def test_modern_mixed_workload_equivalence(technique, seed):
    assert_engines_equivalent(CONFIG, _mixed(seed), _factory(technique), seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("technique", MODERN)
def test_modern_flooding_workload_equivalence(technique, seed):
    assert_engines_equivalent(
        CONFIG, _flooding(seed), _factory(technique), seed=seed
    )


@pytest.mark.parametrize("technique", MODERN)
def test_modern_multi_subarray_equivalence(technique):
    """Two banks x four subarrays: boundary rows lose one neighbour and
    PRACtical's recovery batching groups per subarray; both engines must
    still agree record-for-record."""
    config = small_test_config(num_banks=2, subarrays_per_bank=4)
    assert_engines_equivalent(
        config, _mixed(0, config=config), _factory(technique), seed=0
    )
    assert_engines_equivalent(
        config, _flooding(1, config=config), _factory(technique), seed=1
    )


@pytest.mark.parametrize(
    "technique", ["PARA", "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"]
)
def test_stop_after_first_trigger_equivalence(technique):
    row = CONFIG.geometry.rows_per_bank // 2
    heavy = lambda: build_trace(  # noqa: E731 - heavy enough to trigger all variants
        CONFIG,
        TOTAL_INTERVALS,
        attacks=(
            AttackSpec(
                bank=0, aggressors=(row,), acts_per_interval=120, start_interval=3
            ),
        ),
        seed=1,
    )
    result = assert_engines_equivalent(
        CONFIG,
        heavy,
        _factory(technique),
        seed=1,
        stop_after_first_trigger=True,
    )
    # the flooding trace must actually exercise the early-exit path
    assert result.first_trigger_activation is not None


@pytest.mark.parametrize("technique", ["PARA", "LiPRoMi", "TWiCe", None], ids=str)
@pytest.mark.parametrize("limit", [1, 137, 500])
def test_max_activations_equivalence(technique, limit):
    result = assert_engines_equivalent(
        CONFIG, _mixed(2), _factory(technique), seed=2, max_activations=limit
    )
    assert result.normal_activations <= limit


@pytest.mark.parametrize("technique", ["LiPRoMi", "LoLiPRoMi", "PARA", "TWiCe"])
def test_refresh_policy_equivalence(technique):
    for policy in all_policies(CONFIG.geometry, seed=7):
        assert_engines_equivalent(
            CONFIG,
            _mixed(0),
            _factory(technique),
            seed=0,
            refresh_policy=policy,
        )
        assert_engines_equivalent(
            CONFIG,
            _flooding(0),
            _factory(technique),
            seed=0,
            refresh_policy=policy,
        )


@pytest.mark.parametrize("technique", ["LoLiPRoMi", "PARA", "MRLoc"])
def test_multi_bank_equivalence(two_bank_config, technique):
    trace_factory = _mixed(0, config=two_bank_config)
    assert_engines_equivalent(
        two_bank_config, trace_factory, _factory(technique), seed=0
    )


def test_distance2_disturbance_equivalence():
    """Second-neighbour disturbance disables run batching; still exact."""
    config = small_test_config().scaled(distance2_rate=0.5)
    assert_engines_equivalent(
        config, _flooding(0, config=config), _factory("LiPRoMi"), seed=0
    )
    assert_engines_equivalent(
        config, _mixed(1, config=config), _factory("PARA"), seed=1
    )


def test_mismatched_policy_geometry_rejected():
    """Both engines validate the policy geometry identically."""
    from repro.dram.refresh import SequentialRefresh
    from repro.sim.engine import run_simulation
    from repro.sim.fast_engine import run_simulation_fast

    other = small_test_config(rows_per_bank=1024)
    policy = SequentialRefresh(other.geometry)
    for engine in (run_simulation, run_simulation_fast):
        with pytest.raises(ValueError):
            engine(
                CONFIG, _mixed(0)(), _factory("PARA"), refresh_policy=policy
            )
