"""Differential equivalence: fused grid engine vs reference engine.

The fused engine replays one decoded trace for a whole
``(technique, seed, pbase)`` cell grid at once, with cross-cell
deduplication.  Its license to exist is this suite: every cell of a
fused grid must be field-for-field identical (flips included) to a solo
reference-engine run of that cell, across all registered techniques,
three seeds, a pbase grid, engine-kwarg variants, and an ingested
DRAMSim capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import ddr4_paper_config, small_test_config
from repro.mitigations.registry import (
    MODERN_TECHNIQUES,
    technique_class,
    technique_names,
)
from repro.sim.fused_engine import GridCell, grid_cells, run_simulation_grid
from repro.telemetry.metrics import MetricsRegistry
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace, paper_mixed_workload

from tests.harness import assert_grid_equivalent

CONFIG = small_test_config()
TOTAL_INTERVALS = 48
SEEDS = (0, 1, 2)
#: the paper's pbase ablation axis, scaled around the configured value
PBASE_SCALES = (0.5, 1.0, 2.0)
#: all nine Table III techniques plus the unmitigated baseline
TECHNIQUES = technique_names() + [None]
#: the modern tracker families
MODERN = list(MODERN_TECHNIQUES)

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "traces"


def _mixed(seed, config=CONFIG):
    return lambda: paper_mixed_workload(
        config, total_intervals=TOTAL_INTERVALS, seed=seed
    )


def _flooding(seed, config=CONFIG):
    row = config.geometry.rows_per_bank // 2
    return lambda: build_trace(
        config,
        TOTAL_INTERVALS,
        attacks=(
            AttackSpec(
                bank=0,
                aggressors=(row,),
                acts_per_interval=40,
                start_interval=3,
            ),
        ),
        seed=seed,
    )


@pytest.mark.parametrize("technique", TECHNIQUES, ids=str)
def test_mixed_grid_equivalence(technique):
    """Full seed x pbase plane of each technique vs per-cell reference."""
    cells = grid_cells(
        [technique], SEEDS, pbase_scales=PBASE_SCALES, config=CONFIG
    )
    assert_grid_equivalent(CONFIG, _mixed(0), cells)


@pytest.mark.parametrize("technique", TECHNIQUES, ids=str)
def test_flooding_grid_equivalence(technique):
    cells = grid_cells(
        [technique], SEEDS, pbase_scales=PBASE_SCALES, config=CONFIG
    )
    assert_grid_equivalent(CONFIG, _flooding(1), cells)


@pytest.mark.fused_smoke
def test_bounded_smoke_grid():
    """The CI fused-smoke job: every technique, one bounded mixed grid.

    One grid call covering the whole technique axis (two seeds, two
    pbase points) against per-cell reference runs -- small enough for
    every push, wide enough that any decider regression trips it.
    """
    cells = grid_cells(
        TECHNIQUES, (0, 1), pbase_scales=(1.0, 2.0), config=CONFIG
    )
    assert_grid_equivalent(CONFIG, _mixed(2), cells)


@pytest.mark.parametrize("technique", MODERN)
def test_modern_grid_equivalence(technique):
    """Modern techniques: full seed x pbase plane vs per-cell reference."""
    cells = grid_cells(
        [technique], SEEDS, pbase_scales=PBASE_SCALES, config=CONFIG
    )
    assert_grid_equivalent(CONFIG, _mixed(0), cells)
    assert_grid_equivalent(CONFIG, _flooding(1), cells)


def test_modern_multi_subarray_grid_equivalence():
    """One fused grid over every modern family on a two-bank,
    four-subarray geometry, checked cell-by-cell against reference."""
    config = small_test_config(num_banks=2, subarrays_per_bank=4)
    cells = grid_cells(MODERN + [None], (0, 1), config=config)
    assert_grid_equivalent(config, _mixed(0, config=config), cells)


@pytest.mark.mitigation_matrix
def test_mitigation_matrix_smoke():
    """The CI mitigation-matrix job: every registered technique -- the
    nine paper rows, the extended trackers and the modern families --
    in one tiny fused campaign grid, each cell pinned to a solo
    reference run."""
    all_names = technique_names(include_extended=True, include_modern=True)
    cells = grid_cells(all_names + [None], (0,), config=CONFIG)
    assert_grid_equivalent(CONFIG, _mixed(3), cells)


def test_modern_dedup_collapses_deterministic_lanes():
    """RVC/PVAC/PRAC/PRACtical consume neither rng nor pbase, so a
    seed x pbase plane collapses to one lane each; LoadedDice and
    ProbTracker keep one lane per seed."""
    techniques = MODERN
    cells = grid_cells(
        techniques, SEEDS, pbase_scales=PBASE_SCALES, config=CONFIG
    )
    metrics = MetricsRegistry()
    trace = _mixed(1)().materialize()
    run_simulation_grid(CONFIG, trace, cells, metrics=metrics)
    requested = metrics.counters["fused.cells_requested"].value
    computed = metrics.counters["fused.cells_computed"].value
    assert requested == len(cells) == 6 * len(SEEDS) * len(PBASE_SCALES)
    # 4 deterministic families keep 1 lane; 2 rng families keep one
    # lane per seed
    assert computed == 4 + 2 * len(SEEDS)


def test_grid_dedup_is_invisible():
    """Dedup collapses cells yet every replica still matches reference.

    TWiCe/CRA collapse both axes, PARA/ProHit/MRLoc the pbase axis; the
    metrics registry proves the collapse actually happened while the
    harness proves the replicated results are still per-cell exact.
    """
    techniques = ["TWiCe", "CRA", "PARA", "ProHit", "MRLoc", None]
    cells = grid_cells(
        techniques, SEEDS, pbase_scales=PBASE_SCALES, config=CONFIG
    )
    metrics = MetricsRegistry()
    trace = _mixed(1)().materialize()
    run_simulation_grid(CONFIG, trace, cells, metrics=metrics)
    requested = metrics.counters["fused.cells_requested"].value
    computed = metrics.counters["fused.cells_computed"].value
    deduped = metrics.counters["fused.cells_deduped"].value
    assert requested == len(cells) == 54
    # TWiCe, CRA and the baseline keep 1 lane each; PARA/ProHit/MRLoc
    # keep one lane per seed
    assert computed == 3 + 3 * len(SEEDS)
    assert requested == computed + deduped
    assert_grid_equivalent(CONFIG, _mixed(1), cells)


def test_dedup_traits_match_registry():
    """Every registered technique declares the dedup traits explicitly
    or inherits the conservative default; the deterministic counter
    techniques must have opted out of both axes for the dedup to fire."""
    for name in technique_names(include_extended=True):
        cls = technique_class(name)
        assert isinstance(cls.consumes_rng, bool)
        assert isinstance(cls.consumes_pbase, bool)
    for name in ("TWiCe", "CRA", "CounterTree"):
        cls = technique_class(name)
        assert not cls.consumes_rng and not cls.consumes_pbase
    for name in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
        cls = technique_class(name)
        assert cls.consumes_rng and cls.consumes_pbase
    for name in ("PARA", "ProHit", "MRLoc"):
        cls = technique_class(name)
        assert cls.consumes_rng and not cls.consumes_pbase
    for name in ("RVC", "PVAC", "PRAC", "PRACtical"):
        cls = technique_class(name)
        assert not cls.consumes_rng and not cls.consumes_pbase
    for name in ("LoadedDice", "ProbTracker"):
        cls = technique_class(name)
        assert cls.consumes_rng and not cls.consumes_pbase


@pytest.mark.parametrize(
    "technique", ["PARA", "LiPRoMi", "LoLiPRoMi", "CaPRoMi", "MRLoc"]
)
def test_stop_after_first_trigger_grid(technique):
    row = CONFIG.geometry.rows_per_bank // 2
    heavy = lambda: build_trace(  # noqa: E731
        CONFIG,
        TOTAL_INTERVALS,
        attacks=(
            AttackSpec(
                bank=0, aggressors=(row,), acts_per_interval=120,
                start_interval=3,
            ),
        ),
        seed=1,
    )
    cells = grid_cells([technique], SEEDS, config=CONFIG)
    results = assert_grid_equivalent(
        CONFIG, heavy, cells, stop_after_first_trigger=True
    )
    assert any(
        result.first_trigger_activation is not None for result in results
    )


@pytest.mark.parametrize("limit", [1, 137, 500])
def test_max_activations_grid(limit):
    cells = grid_cells(
        ["PARA", "LiPRoMi", "TWiCe", None], (2,), config=CONFIG
    )
    results = assert_grid_equivalent(
        CONFIG, _mixed(2), cells, max_activations=limit
    )
    assert all(result.normal_activations <= limit for result in results)


def test_multi_bank_grid_equivalence(two_bank_config):
    cells = grid_cells(
        ["LoLiPRoMi", "PARA", "MRLoc", "CaPRoMi"], (0, 1),
        config=two_bank_config,
    )
    assert_grid_equivalent(
        two_bank_config, _mixed(0, config=two_bank_config), cells
    )


def test_ingested_dramsim_grid_equivalence():
    """The gzipped DRAMSim capture replays grid-identically.

    Ingested traces have irregular timing and multi-bank interleaving
    the synthetic workloads never produce; the fused tape must segment
    them exactly like the per-record reference loop.
    """
    from repro.traces.ingest import ingest_trace

    config = ddr4_paper_config()
    ingested = ingest_trace(
        FIXTURES / "mini_dramsim.trace.gz", config, clock_ns=45.0
    )
    trace = ingested.trace.materialize()
    cells = grid_cells(
        TECHNIQUES, (0, 1), pbase_scales=(1.0, 2.0), config=config
    )
    assert_grid_equivalent(config, lambda: trace, cells)


def test_mismatched_cell_geometry_rejected():
    other = small_test_config(rows_per_bank=1024)
    cells = [GridCell(technique="PARA", seed=0, config=other)]
    with pytest.raises(ValueError):
        run_simulation_grid(CONFIG, _mixed(0)(), cells)


def test_tracer_requires_single_cell():
    from repro.telemetry import RecordingTracer

    cells = grid_cells(["PARA", "TWiCe"], (0,), config=CONFIG)
    with pytest.raises(ValueError):
        run_simulation_grid(
            CONFIG, _mixed(0)(), cells, tracer=RecordingTracer()
        )


def test_single_cell_tracer_matches_solo_fast_engine():
    """A one-cell grid with telemetry equals the solo fast engine's."""
    from repro.sim.fast_engine import run_simulation_fast
    from repro.mitigations.registry import make_factory
    from repro.telemetry import RecordingTracer

    trace = _mixed(0)().materialize()
    solo_tracer, grid_tracer = RecordingTracer(), RecordingTracer()
    solo = run_simulation_fast(
        CONFIG, trace, make_factory("LiPRoMi"), seed=0, tracer=solo_tracer
    )
    [gridded] = run_simulation_grid(
        CONFIG, trace, [GridCell(technique="LiPRoMi", seed=0)],
        tracer=grid_tracer,
    )
    assert solo.as_dict() == gridded.as_dict()
    assert solo_tracer.events == grid_tracer.events
