"""Differential test harness for the simulation engines.

The fast engine (:mod:`repro.sim.fast_engine`) is only allowed to exist
because this harness pins it field-for-field to the reference engine:
every comparison runs both engines over *identically generated* traces
and asserts that the two :class:`~repro.sim.metrics.SimResult` objects
agree on every field except ``wall_seconds``.

Traces are requested through a zero-argument factory rather than passed
as values: lazily generated traces are one-shot iterators, so handing
the same object to both engines would silently feed the second engine
an empty trace.  The factory is called once per engine, and determinism
of the generators makes the two traces identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.sim.engine import run_simulation
from repro.sim.fast_engine import run_simulation_fast
from repro.sim.metrics import SimResult
from repro.traces.record import Trace

TraceFactory = Callable[[], Trace]


def diff_results(
    reference: SimResult, candidate: SimResult
) -> Dict[str, Tuple[Any, Any]]:
    """Fields on which the two results disagree (``wall_seconds`` excluded).

    Returns ``{field: (reference_value, candidate_value)}`` -- empty
    when the results are equivalent.
    """
    ref = reference.as_dict()
    cand = candidate.as_dict()
    return {
        key: (ref[key], cand[key])
        for key in ref
        if ref[key] != cand[key]
    }


def assert_engines_equivalent(
    config,
    trace_factory: TraceFactory,
    mitigation_factory,
    seed: int = 0,
    **engine_kwargs,
) -> SimResult:
    """Run both engines and assert result equivalence.

    ``engine_kwargs`` (``refresh_policy``, ``stop_after_first_trigger``,
    ``max_activations``) are forwarded to both engines.  Returns the
    reference result so callers can make further assertions on it.
    """
    reference = run_simulation(
        config, trace_factory(), mitigation_factory, seed=seed, **engine_kwargs
    )
    fast = run_simulation_fast(
        config, trace_factory(), mitigation_factory, seed=seed, **engine_kwargs
    )
    differences = diff_results(reference, fast)
    assert not differences, (
        f"engines diverged for technique={reference.technique!r} "
        f"seed={seed} kwargs={engine_kwargs!r}:\n"
        + "\n".join(
            f"  {field}: reference={ref!r} fast={cand!r}"
            for field, (ref, cand) in differences.items()
        )
    )
    return reference


def assert_grid_equivalent(
    config,
    trace_factory: TraceFactory,
    cells,
    reference_engine=run_simulation,
    **engine_kwargs,
):
    """Run a fused cell grid and pin every cell to a solo reference run.

    ``cells`` is a sequence of :class:`repro.sim.fused_engine.GridCell`.
    The trace is materialised once and shared -- exactly the fused
    engine's contract (one grid call, one fixed trace) -- then each
    cell's fused result is diffed field-for-field (flips included)
    against ``reference_engine`` run solo with that cell's config, seed
    and mitigation factory.  ``engine_kwargs`` (``refresh_policy``,
    ``stop_after_first_trigger``, ``max_activations``) are forwarded to
    both sides.  Returns the fused results for further assertions.
    """
    from repro.mitigations.registry import make_factory
    from repro.sim.fused_engine import run_simulation_grid

    trace = trace_factory().materialize()
    fused = run_simulation_grid(config, trace, cells, **engine_kwargs)
    assert len(fused) == len(cells)
    for cell, candidate in zip(cells, fused):
        cell_config = cell.config if cell.config is not None else config
        mitigation_factory = (
            make_factory(cell.technique, **dict(cell.kwargs))
            if cell.technique
            else None
        )
        reference = reference_engine(
            cell_config, trace, mitigation_factory, seed=cell.seed,
            **engine_kwargs,
        )
        differences = diff_results(reference, candidate)
        assert not differences, (
            f"fused grid diverged from {reference_engine.__name__} at "
            f"cell technique={cell.technique!r} seed={cell.seed} "
            f"pbase={cell_config.pbase} kwargs={engine_kwargs!r}:\n"
            + "\n".join(
                f"  {field}: reference={ref!r} fused={cand!r}"
                for field, (ref, cand) in differences.items()
            )
        )
    return fused


def assert_telemetry_transparent(
    config,
    trace_factory: TraceFactory,
    mitigation_factory,
    seed: int = 0,
    engine: str = "reference",
    **engine_kwargs,
):
    """Assert that enabled telemetry does not perturb the result.

    Runs *engine* twice over identically generated traces -- once bare,
    once with a :class:`RecordingTracer` and a fresh
    :class:`MetricsRegistry` -- and asserts the two ``SimResult``\\ s are
    field-for-field identical.  Telemetry only observes (it never draws
    from the RNG streams or mutates simulation state), so any
    divergence here is a hook placed on the decision path.

    Returns ``(result, tracer, metrics)`` from the instrumented run for
    further assertions on the event stream.
    """
    from repro.sim.engine import get_engine
    from repro.telemetry import MetricsRegistry, RecordingTracer

    run = get_engine(engine)
    bare = run(
        config, trace_factory(), mitigation_factory, seed=seed, **engine_kwargs
    )
    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    observed = run(
        config, trace_factory(), mitigation_factory, seed=seed,
        tracer=tracer, metrics=metrics, **engine_kwargs
    )
    differences = diff_results(bare, observed)
    assert not differences, (
        f"telemetry perturbed the {engine} engine for "
        f"technique={bare.technique!r} seed={seed}:\n"
        + "\n".join(
            f"  {field}: bare={ref!r} observed={cand!r}"
            for field, (ref, cand) in differences.items()
        )
    )
    return observed, tracer, metrics
