"""Tests for the mutation/crossover operators: determinism and closure."""

import random

from repro.adversary import PatternGenome, crossover, mutate, random_genome, seed_corpus
from repro.adversary.mutate import OPERATOR_WEIGHTS, align_phase
from repro.config import small_test_config
from repro.rng import stream


def rng(label="ops"):
    return stream(0, "test-mutate", label)


class TestDeterminism:
    def test_mutate_is_seed_deterministic(self):
        config = small_test_config()
        parent = seed_corpus(config)[0]
        children_a = [mutate(parent, rng(), config) for _ in range(1)]
        children_b = [mutate(parent, rng(), config) for _ in range(1)]
        assert children_a == children_b

    def test_random_genome_is_seed_deterministic(self):
        config = small_test_config()
        assert random_genome(rng(), config) == random_genome(rng(), config)


class TestClosure:
    """Every operator output is a valid genome that compiles in-range."""

    def test_operators_preserve_validity(self):
        config = small_test_config()
        generator = rng("closure")
        for parent in seed_corpus(config):
            for operator, _weight in OPERATOR_WEIGHTS:
                child = operator(parent, generator, config)
                assert isinstance(child, PatternGenome)
                specs = child.compile(config, total_intervals=128)
                for spec in specs:
                    for row in spec.aggressors:
                        assert 0 <= row < config.geometry.rows_per_bank

    def test_long_mutation_chain_stays_valid(self):
        config = small_test_config()
        generator = rng("chain")
        genome = seed_corpus(config)[0]
        for _ in range(200):
            genome = mutate(genome, generator, config)
            genome.compile(config, total_intervals=128)
            assert genome.phase < config.geometry.refint


class TestAlignPhase:
    def test_aligns_to_dominant_row_refresh_slot(self):
        config = small_test_config()  # rows_per_interval 8
        genome = seed_corpus(config)[0]  # flood at row 256
        aligned = align_phase(genome, rng(), config)
        assert aligned.phase == 256 // 8  # f_r of the flooded row

    def test_mutate_labels_lineage(self):
        config = small_test_config()
        child = mutate(seed_corpus(config)[0], rng(), config)
        assert child.name.startswith("mut:")
        assert child.name.endswith(child.digest())


class TestCrossover:
    def test_child_mixes_parents(self):
        config = small_test_config()
        corpus = seed_corpus(config)
        generator = random.Random(7)
        child = crossover(corpus[0], corpus[4], generator)
        # genes come from one parent, timing/decoys from the other:
        # crossing the plain flood with the decoy seed yields a new key
        # whichever way the coin fell
        assert child.compile(config, total_intervals=64)
        assert child.name.startswith("cross.")
        assert child.key() not in {corpus[0].key(), corpus[4].key()}
