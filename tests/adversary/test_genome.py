"""Tests for the pattern genome: validation, compilation, identity."""

import pytest

from repro.adversary import AggressorGene, PatternGenome, seed_corpus
from repro.config import small_test_config


def flood(intensity=100, **kwargs):
    return PatternGenome(
        aggressors=(AggressorGene(row=256, intensity=intensity),), **kwargs
    )


class TestValidation:
    def test_rejects_empty_aggressors(self):
        with pytest.raises(ValueError):
            PatternGenome(aggressors=())

    def test_rejects_zero_intensity(self):
        with pytest.raises(ValueError):
            AggressorGene(row=1, intensity=0)

    def test_rejects_negative_row(self):
        with pytest.raises(ValueError):
            AggressorGene(row=-1, intensity=1)

    def test_rejects_idle_without_burst(self):
        with pytest.raises(ValueError):
            flood(idle=4)

    def test_rejects_decoys_without_rate(self):
        with pytest.raises(ValueError):
            flood(decoy_count=8)


class TestCompile:
    def test_continuous_gene_is_one_open_spec(self):
        config = small_test_config()
        specs = flood(phase=3).compile(config, total_intervals=64)
        assert len(specs) == 1
        assert specs[0].start_interval == 3
        assert specs[0].end_interval is None
        assert specs[0].aggressors == (256,)
        assert specs[0].rows_per_bank == config.geometry.rows_per_bank

    def test_duty_cycle_tiles_spans(self):
        config = small_test_config()
        specs = flood(burst=4, idle=4).compile(config, total_intervals=16)
        intervals = [(s.start_interval, s.end_interval) for s in specs]
        assert intervals == [(0, 4), (8, 12)]

    def test_gene_offset_shifts_start(self):
        config = small_test_config()
        genome = PatternGenome(
            aggressors=(AggressorGene(row=10, intensity=5, offset=7),),
            phase=2,
        )
        specs = genome.compile(config, total_intervals=64)
        assert specs[0].start_interval == 9

    def test_decoys_become_round_robin_spec(self):
        config = small_test_config()
        genome = flood(decoy_count=4, decoy_first_row=8, decoy_spacing=2,
                       decoy_rate=3)
        specs = genome.compile(config, total_intervals=64)
        decoys = specs[-1]
        assert decoys.aggressors == (8, 10, 12, 14)
        assert decoys.acts_per_interval == 3

    def test_out_of_range_row_fails_at_compile(self):
        config = small_test_config()  # 512 rows
        genome = PatternGenome(
            aggressors=(AggressorGene(row=600, intensity=5),)
        )
        with pytest.raises(ValueError, match="outside"):
            genome.compile(config, total_intervals=64)

    def test_phase_past_horizon_compiles_empty(self):
        config = small_test_config()
        assert flood(phase=100).compile(config, total_intervals=64) == []


class TestIdentity:
    def test_roundtrip(self):
        genome = flood(phase=5, burst=2, idle=3, decoy_count=8,
                       decoy_rate=2, name="x")
        assert PatternGenome.from_dict(genome.as_dict()) == genome

    def test_key_ignores_name(self):
        assert flood(name="a").key() == flood(name="b").key()

    def test_key_distinguishes_phase(self):
        assert flood(phase=0).key() != flood(phase=1).key()

    def test_renamed_embeds_digest(self):
        renamed = flood().renamed("mut:test")
        assert renamed.name == f"mut:test.{renamed.digest()}"
        # digest is a function of the key, not the name
        assert renamed.digest() == flood().digest()


class TestActsPerWindow:
    def test_continuous_flood(self):
        config = small_test_config()  # refint 64
        assert flood(intensity=10).acts_per_window(config) == 640

    def test_phase_delays_budget(self):
        config = small_test_config()
        assert flood(intensity=10, phase=32).acts_per_window(config) == 320

    def test_duty_cycle_halves_budget(self):
        config = small_test_config()
        assert flood(intensity=10, burst=4, idle=4).acts_per_window(config) == 320

    def test_decoys_add_budget(self):
        config = small_test_config()
        genome = flood(intensity=10, decoy_count=4, decoy_rate=2)
        assert genome.acts_per_window(config) == 640 + 2 * 64


class TestSeedCorpus:
    def test_corpus_compiles_and_is_unique(self):
        config = small_test_config()
        corpus = seed_corpus(config)
        assert len(corpus) == 5
        assert len({g.key() for g in corpus}) == 5
        for genome in corpus:
            assert genome.compile(config, total_intervals=64)

    def test_corpus_names_are_seeds(self):
        for genome in seed_corpus(small_test_config()):
            assert genome.name.startswith("seed:")
