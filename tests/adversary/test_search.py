"""Search-level tests: determinism, resume, and the LiPRoMi rediscovery.

The rediscovery test is the subsystem's acceptance criterion: a small
fixed-budget evolutionary search against LiPRoMi must deterministically
find a weight-aware flooding genome -- dominant single aggressor,
attack phase aligned with the aggressor row's refresh slot ``f_r`` --
whose fitness beats every canned corpus seed.  That is the documented
Section III-A weakness, found by the fuzzer instead of being
hand-coded.
"""

from dataclasses import replace

import pytest

from repro.adversary import (
    AdversaryFrontier,
    SearchSettings,
    SearchStore,
    run_search,
    seed_corpus,
)
from repro.campaign import CampaignStateError, CheckpointMismatchError
from repro.config import small_test_config


def sharp_config():
    """Small geometry with Pbase boosted to 2^-12.

    At the paper's 2^-16 a single tiny window is noise-dominated (the
    first anomalously small RNG draw decides the trigger); at 2^-12 the
    weight schedule is the dominant term, so phase alignment is causal
    -- the regime the rediscovery test needs.
    """
    return replace(small_test_config(), pbase=2.0 ** -12)


def settings(**overrides):
    base = dict(technique="LiPRoMi", strategy="evolve", budget=21,
                eval_seeds=2, seed=0)
    base.update(overrides)
    return SearchSettings(**base)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        config = small_test_config()
        first = run_search(config, settings())
        second = run_search(config, settings())
        assert first.as_dict() == second.as_dict()
        assert first.frontier.to_json() == second.frontier.to_json()

    def test_different_seed_different_search(self):
        config = small_test_config()
        first = run_search(config, settings(seed=0))
        second = run_search(config, settings(seed=1))
        assert first.as_dict() != second.as_dict()

    def test_worker_count_does_not_change_results(self):
        config = small_test_config()
        inline = run_search(config, settings())
        pooled = run_search(config, settings(), workers=2)
        assert inline.as_dict() == pooled.as_dict()

    def test_technique_name_is_case_insensitive(self):
        config = small_test_config()
        lower = run_search(config, settings(technique="lipromi"))
        canonical = run_search(config, settings(technique="LiPRoMi"))
        assert lower.as_dict() == canonical.as_dict()
        assert lower.technique == "LiPRoMi"

    def test_random_strategy_covers_budget(self):
        config = small_test_config()
        outcome = run_search(config, settings(strategy="random", budget=9))
        assert outcome.evaluations == 9
        assert outcome.frontier.points

    def test_budget_is_exact_even_mid_generation(self):
        config = small_test_config()
        outcome = run_search(config, settings(budget=7))
        assert outcome.evaluations == 7

    def test_generation_zero_is_the_corpus(self):
        config = small_test_config()
        outcome = run_search(config, settings(budget=5))
        names = {c.genome.name for c in outcome.population}
        assert names <= {g.name for g in seed_corpus(config)}


class TestResume:
    def test_full_replay_matches_fresh(self, tmp_path):
        config = small_test_config()
        fresh = run_search(config, settings(), checkpoint_dir=tmp_path / "ck")
        replayed = run_search(config, settings(),
                              checkpoint_dir=tmp_path / "ck", resume=True)
        assert replayed.as_dict() == fresh.as_dict()

    def test_partial_resume_is_bit_identical(self, tmp_path):
        config = small_test_config()
        fresh = run_search(config, settings(), checkpoint_dir=tmp_path / "ck")
        store = SearchStore(tmp_path / "ck")
        generations = sorted(store.generation_dir.glob("*.json"))
        assert len(generations) >= 2
        for path in generations[1:]:
            path.unlink()
        resumed = run_search(config, settings(),
                             checkpoint_dir=tmp_path / "ck", resume=True)
        assert resumed.as_dict() == fresh.as_dict()
        assert resumed.frontier.to_json() == fresh.frontier.to_json()

    def test_existing_checkpoint_requires_resume_flag(self, tmp_path):
        config = small_test_config()
        run_search(config, settings(), checkpoint_dir=tmp_path / "ck")
        with pytest.raises(CampaignStateError, match="resume"):
            run_search(config, settings(), checkpoint_dir=tmp_path / "ck")

    def test_resume_with_different_knobs_fails_fast(self, tmp_path):
        config = small_test_config()
        run_search(config, settings(), checkpoint_dir=tmp_path / "ck")
        with pytest.raises(CheckpointMismatchError, match="budget"):
            run_search(config, settings(budget=22),
                       checkpoint_dir=tmp_path / "ck", resume=True)

    def test_on_generation_skipped_for_replayed_generations(self, tmp_path):
        config = small_test_config()
        run_search(config, settings(), checkpoint_dir=tmp_path / "ck")
        fired = []
        run_search(config, settings(), checkpoint_dir=tmp_path / "ck",
                   resume=True, on_generation=lambda g, c: fired.append(g))
        assert fired == []


class TestRediscovery:
    """The acceptance criterion (see module docstring)."""

    def test_evolve_rediscovers_weight_aware_flooding(self):
        config = sharp_config()
        outcome = run_search(
            config,
            SearchSettings(technique="LiPRoMi", strategy="evolve",
                           budget=60, eval_seeds=3, seed=0),
        )
        best = outcome.best.genome
        dominant = best.dominant_gene()
        total = sum(gene.intensity for gene in best.aggressors)

        # beats every canned seed, with real margin
        assert outcome.best.fitness > outcome.corpus_best.fitness
        assert outcome.improvement > 2.0

        # ... and the winning genome is weight-aware flooding: one
        # dominant aggressor whose attack phase sits at (or just after)
        # the row's own refresh slot, where its Eq. 1 weight is lowest
        refint = config.geometry.refint
        slot = dominant.row // config.geometry.rows_per_interval
        assert dominant.intensity / total >= 0.7
        assert (best.phase - slot) % refint <= refint // 8

    def test_rediscovery_is_deterministic(self):
        config = sharp_config()
        knobs = SearchSettings(technique="LiPRoMi", strategy="evolve",
                               budget=60, eval_seeds=3, seed=0)
        assert (run_search(config, knobs).frontier.to_json()
                == run_search(config, knobs).frontier.to_json())

    def test_frontier_is_nonempty_and_consistent(self):
        outcome = run_search(sharp_config(),
                             SearchSettings(technique="LiPRoMi", budget=21))
        assert outcome.frontier.points
        best = outcome.frontier.best
        assert best.fitness == pytest.approx(outcome.best.fitness)
        clone = AdversaryFrontier.from_dict(outcome.frontier.as_dict())
        assert clone.to_json() == outcome.frontier.to_json()
