"""Tests for the adversary checkpoint store (spec + generations)."""

import json

import pytest

from repro.adversary import SearchSettings, SearchSpec, SearchStore
from repro.campaign import CampaignStateError, CheckpointMismatchError
from repro.config import small_test_config


def spec(**overrides):
    settings = SearchSettings(technique="PARA", budget=8, **overrides)
    return SearchSpec.build(small_test_config(), settings)


class TestSpec:
    def test_roundtrip(self):
        original = spec()
        assert SearchSpec.from_dict(original.as_dict()) == original

    def test_mismatches_flags_changed_knobs(self):
        changed = spec(seed=7)
        diff = spec().mismatches(changed)
        assert set(diff) == {"seed"}

    def test_config_change_flags_hash(self):
        other = SearchSpec.build(
            small_test_config(num_banks=2),
            SearchSettings(technique="PARA", budget=8),
        )
        assert "config_hash" in spec().mismatches(other)


class TestStore:
    def test_initialize_and_read(self, tmp_path):
        store = SearchStore(tmp_path / "ck")
        assert not store.exists
        store.initialize(spec())
        assert store.exists
        assert store.read_spec() == spec()

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(CampaignStateError):
            SearchStore(tmp_path / "nope").read_spec()

    def test_ensure_matches_rejects_other_search(self, tmp_path):
        store = SearchStore(tmp_path / "ck")
        store.initialize(spec())
        with pytest.raises(CheckpointMismatchError):
            store.ensure_matches(spec(strategy="random"))

    def test_generations_load_in_order(self, tmp_path):
        store = SearchStore(tmp_path / "ck")
        store.initialize(spec())
        store.write_generation(0, [{"id": "a"}])
        store.write_generation(1, [{"id": "b"}, {"id": "c"}])
        assert store.load_generations() == [
            [{"id": "a"}], [{"id": "b"}, {"id": "c"}],
        ]

    def test_gap_truncates_replay(self, tmp_path):
        store = SearchStore(tmp_path / "ck")
        store.initialize(spec())
        store.write_generation(0, [{"id": "a"}])
        store.write_generation(2, [{"id": "late"}])
        assert store.load_generations() == [[{"id": "a"}]]

    def test_corrupt_generation_truncates_replay(self, tmp_path):
        store = SearchStore(tmp_path / "ck")
        store.initialize(spec())
        store.write_generation(0, [{"id": "a"}])
        store.write_generation(1, [{"id": "b"}])
        store.generation_path(1).write_text("{torn", encoding="utf-8")
        assert store.load_generations() == [[{"id": "a"}]]

    def test_writes_are_atomic_json(self, tmp_path):
        store = SearchStore(tmp_path / "ck")
        store.initialize(spec())
        path = store.write_generation(0, [{"id": "a"}])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["generation"] == 0
        assert not list(path.parent.glob("*.tmp"))
