"""Kill-and-resume determinism for the adversary search.

Mirrors ``tests/campaign/test_kill_resume.py``: a subprocess runs a
real search that hangs after checkpointing its second generation, gets
SIGKILLed mid-run, and the search is resumed in-process.  The resumed
frontier JSON must be bit-identical to an uninterrupted reference run.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.adversary import SearchSettings, SearchStore, run_search
from repro.config import small_test_config

SETTINGS = dict(technique="LiPRoMi", strategy="evolve", budget=21,
                eval_seeds=2, seed=0)

# gen 0 (5 corpus seeds) + two offspring generations of 8 = 21
EXPECTED_GENERATIONS = 3

# The driver script run in the doomed subprocess: the same search the
# test later resumes, except it hangs after generation 1 is durably
# checkpointed, keeping the process alive until the test kills it.
DRIVER = textwrap.dedent(
    """
    import time

    from repro.adversary import SearchSettings, run_search
    from repro.config import small_test_config

    def hang_after_gen_1(generation, candidates):
        if generation >= 1:
            time.sleep(120)

    run_search(
        small_test_config(),
        SearchSettings(technique="LiPRoMi", strategy="evolve", budget=21,
                       eval_seeds=2, seed=0),
        checkpoint_dir={ckpt!r},
        on_generation=hang_after_gen_1,
    )
    """
)


def start_doomed_search(ckpt):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-c", DRIVER.format(ckpt=str(ckpt))],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def wait_for_checkpointed_generations(store, proc, count=2, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(store.generation_path(i).is_file() for i in range(count)):
            return
        if proc.poll() is not None:
            _, stderr = proc.communicate()
            pytest.fail(
                "search subprocess exited before being killed:\n"
                + stderr.decode("utf-8", "replace")
            )
        time.sleep(0.05)
    proc.kill()
    pytest.fail("generations were not checkpointed within %.0fs" % timeout)


class TestKillResume:
    def test_sigkilled_search_resumes_bit_identical(self, tmp_path):
        ckpt = tmp_path / "ck"
        store = SearchStore(ckpt)
        proc = start_doomed_search(ckpt)
        try:
            wait_for_checkpointed_generations(store, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        stored = len(store.load_generations())
        assert 2 <= stored < EXPECTED_GENERATIONS, (
            "kill must land mid-search; got %d/%d generations"
            % (stored, EXPECTED_GENERATIONS)
        )

        resumed = run_search(
            small_test_config(), SearchSettings(**SETTINGS),
            checkpoint_dir=ckpt, resume=True,
        )
        reference = run_search(small_test_config(), SearchSettings(**SETTINGS))
        assert resumed.frontier.to_json() == reference.frontier.to_json()
        assert resumed.as_dict() == reference.as_dict()
        assert len(store.load_generations()) == EXPECTED_GENERATIONS
