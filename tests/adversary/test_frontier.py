"""Tests for the (fitness, activation-budget) Pareto frontier."""

from repro.adversary import AdversaryFrontier, FrontierPoint


def point(fitness, acts, row=1, name=None):
    return FrontierPoint(
        genome={"aggressors": [{"row": row, "intensity": 1, "offset": 0}],
                "bank": 0, "phase": 0, "burst": 0, "idle": 0,
                "decoy_count": 0, "decoy_first_row": 0, "decoy_spacing": 4,
                "decoy_rate": 0, "name": name or f"p{row}"},
        name=name or f"p{row}",
        acts_per_window=acts,
        fitness=fitness,
        escape_rate=0.0,
        generation=0,
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert point(10.0, 5).dominates(point(9.0, 6))

    def test_equal_points_do_not_dominate(self):
        assert not point(10.0, 5).dominates(point(10.0, 5))

    def test_tradeoff_points_do_not_dominate(self):
        cheap_weak, costly_strong = point(5.0, 1), point(10.0, 9)
        assert not cheap_weak.dominates(costly_strong)
        assert not costly_strong.dominates(cheap_weak)


class TestUpdate:
    def test_dominated_points_are_dropped(self):
        frontier = AdversaryFrontier("PARA")
        frontier.update([point(10.0, 5, row=1), point(9.0, 6, row=2)])
        assert [p.fitness for p in frontier.points] == [10.0]

    def test_tradeoff_points_coexist_sorted_by_budget(self):
        frontier = AdversaryFrontier("PARA")
        frontier.update([point(10.0, 9, row=1), point(5.0, 1, row=2)])
        assert [p.acts_per_window for p in frontier.points] == [1, 9]

    def test_incremental_equals_batch(self):
        points = [point(10.0, 9, row=1), point(5.0, 1, row=2),
                  point(7.0, 4, row=3), point(6.0, 8, row=4)]
        batch = AdversaryFrontier("PARA")
        batch.update(points)
        incremental = AdversaryFrontier("PARA")
        for p in points:
            incremental.update([p])
        assert batch.to_json() == incremental.to_json()

    def test_order_invariant(self):
        points = [point(10.0, 9, row=1), point(5.0, 1, row=2),
                  point(7.0, 4, row=3)]
        forward = AdversaryFrontier("PARA")
        forward.update(points)
        backward = AdversaryFrontier("PARA")
        backward.update(list(reversed(points)))
        assert forward.to_json() == backward.to_json()

    def test_objective_ties_keep_one_point(self):
        frontier = AdversaryFrontier("PARA")
        frontier.update([point(10.0, 5, row=1), point(10.0, 5, row=2)])
        assert len(frontier.points) == 1

    def test_duplicate_genomes_collapse(self):
        frontier = AdversaryFrontier("PARA")
        frontier.update([point(10.0, 5, row=1), point(10.0, 5, row=1)])
        assert len(frontier.points) == 1

    def test_best_is_highest_fitness(self):
        frontier = AdversaryFrontier("PARA")
        frontier.update([point(10.0, 9, row=1), point(5.0, 1, row=2)])
        assert frontier.best.fitness == 10.0

    def test_empty_frontier_has_no_best(self):
        assert AdversaryFrontier("PARA").best is None


class TestSerialisation:
    def test_roundtrip(self):
        frontier = AdversaryFrontier("LiPRoMi")
        frontier.update([point(10.0, 9, row=1), point(5.0, 1, row=2)])
        clone = AdversaryFrontier.from_dict(frontier.as_dict())
        assert clone.to_json() == frontier.to_json()
        assert clone.technique == "LiPRoMi"
