"""Tests for repro.rng: deterministic, independent seed streams."""

from hypothesis import given, strategies as st

from repro.rng import BufferedRandom, derive_seed, seed_sequence, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_stable_across_processes(self):
        # sha256-based: these exact values must never change, or stored
        # experiment seeds silently shift
        assert derive_seed(0) == derive_seed(0)
        assert isinstance(derive_seed(0, "x"), int)
        assert 0 <= derive_seed(0, "x") < 2 ** 64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_always_in_64bit_range(self, root, label):
        assert 0 <= derive_seed(root, label) < 2 ** 64


class TestStream:
    def test_streams_reproducible(self):
        a = stream(7, "gen").random()
        b = stream(7, "gen").random()
        assert a == b

    def test_streams_independent(self):
        a = [stream(7, "one").random() for _ in range(4)]
        b = [stream(7, "two").random() for _ in range(4)]
        assert a != b


class TestSeedSequence:
    def test_count_and_uniqueness(self):
        seeds = list(seed_sequence(3, 16, "banks"))
        assert len(seeds) == 16
        assert len(set(seeds)) == 16

    def test_prefix_stable(self):
        long = list(seed_sequence(3, 8, "banks"))
        short = list(seed_sequence(3, 4, "banks"))
        assert long[:4] == short


class TestBufferedRandom:
    def test_matches_unbuffered_random_stream(self):
        import random

        plain = random.Random(123)
        buffered = BufferedRandom(random.Random(123), block=7)
        assert [buffered.random() for _ in range(50)] == [
            plain.random() for _ in range(50)
        ]

    def test_interleaved_randrange_stays_exact(self):
        """randrange mid-block must consume the generator exactly where
        an unbuffered caller would (the fast engine's PARA decider
        inlines this rewind protocol)."""
        import random

        plain = random.Random(9)
        buffered = BufferedRandom(random.Random(9), block=16)
        expected = []
        actual = []
        for step in range(60):
            expected.append(plain.random())
            actual.append(buffered.random())
            if step % 5 == 4:
                expected.append(plain.randrange(3))
                actual.append(buffered.randrange(3))
        assert actual == expected

    def test_getstate_syncs(self):
        import random

        plain = random.Random(4)
        buffered = BufferedRandom(random.Random(4), block=8)
        for _ in range(3):
            plain.random()
            buffered.random()
        assert buffered.getstate() == plain.getstate()

    def test_rejects_non_positive_block(self):
        import random

        import pytest

        with pytest.raises(ValueError):
            BufferedRandom(random.Random(0), block=0)
