"""Tests for CRA per-row counters."""

from repro.config import SimConfig, small_test_config
from repro.mitigations.base import ActivateNeighbors
from repro.mitigations.cra import CRA


def make(flip_threshold=8):
    return CRA(small_test_config(flip_threshold=flip_threshold))


class TestTrigger:
    def test_threshold_is_quarter_flip(self):
        assert make(flip_threshold=8).trigger_threshold == 2

    def test_act_n_at_threshold(self):
        cra = make(flip_threshold=8)
        assert cra.on_activation(50, 0) == ()
        assert cra.on_activation(50, 0) == (ActivateNeighbors(row=50),)

    def test_counter_resets_after_trigger(self):
        cra = make(flip_threshold=8)
        cra.on_activation(50, 0)
        cra.on_activation(50, 0)
        assert cra.counter(50) == 0

    def test_counters_independent_per_row(self):
        cra = make(flip_threshold=100)
        cra.on_activation(10, 0)
        cra.on_activation(20, 0)
        assert cra.counter(10) == 1
        assert cra.counter(20) == 1

    def test_not_vulnerable_and_deterministic(self):
        assert CRA.known_vulnerabilities == ()


class TestRefreshReset:
    def test_refresh_clears_only_refreshed_group(self):
        cra = make(flip_threshold=1_000)
        cra.on_activation(3, 0)    # group 0 (rows 0..7)
        cra.on_activation(50, 0)   # group 6
        cra.on_refresh(0)          # refreshes rows 0..7
        assert cra.counter(3) == 0
        assert cra.counter(50) == 1

    def test_reset_follows_window_wrap(self):
        cra = make(flip_threshold=1_000)
        refint = cra.refint
        cra.on_activation(3, 0)
        cra.on_refresh(refint)  # window-relative 0 again
        assert cra.counter(3) == 0


class TestStorage:
    def test_paper_scale_storage_is_tens_of_kb(self):
        cra = CRA(SimConfig())
        assert 50_000 < cra.table_bytes < 300_000

    def test_storage_scales_with_rows(self):
        small = CRA(small_test_config(rows_per_bank=256, flip_threshold=2_000))
        large = CRA(small_test_config(rows_per_bank=512, flip_threshold=2_000))
        assert large.table_bytes == 2 * small.table_bytes
