"""Tests for the technique registry."""

import pytest

from repro.config import small_test_config
from repro.mitigations.base import Mitigation
from repro.mitigations.registry import (
    BASELINES,
    TECHNIQUES,
    TIVAPROMI_VARIANTS,
    make_capturing_factory,
    make_factory,
    make_mitigation,
    resolve_technique,
    technique_names,
)


class TestRegistry:
    def test_all_nine_present(self):
        assert len(TECHNIQUES) == 9
        assert set(BASELINES) | set(TIVAPROMI_VARIANTS) == set(TECHNIQUES)

    def test_paper_groups(self):
        assert set(BASELINES) == {"PARA", "ProHit", "MRLoc", "TWiCe", "CRA"}
        assert set(TIVAPROMI_VARIANTS) == {
            "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi",
        }

    def test_every_name_instantiates(self):
        config = small_test_config()
        for name in technique_names():
            instance = make_mitigation(name, config, bank=1, seed=2)
            assert isinstance(instance, Mitigation)
            assert instance.name == name
            assert instance.bank == 1
            assert instance.table_bytes >= 0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown technique"):
            make_mitigation("NoSuch", small_test_config())

    def test_kwargs_forwarded(self):
        para = make_mitigation("PARA", small_test_config(), probability=0.5)
        assert para.probability == 0.5

    def test_factory_closes_over_name(self):
        factory = make_factory("TWiCe")
        assert factory.technique_name == "TWiCe"
        instance = factory(small_test_config(), 0, 7)
        assert instance.name == "TWiCe"

    def test_factory_passes_bank_and_seed(self):
        factory = make_factory("PARA", probability=0.25)
        instance = factory(small_test_config(), 3, 11)
        assert instance.bank == 3
        assert instance.probability == 0.25


class TestCapturingFactory:
    def test_records_instances_per_bank(self):
        from repro.mitigations.counter_tree import CounterTree

        holder = {}
        factory = make_capturing_factory(CounterTree, holder, node_budget=16)
        config = small_test_config()
        first = factory(config, 0, 7)
        second = factory(config, 1, 7)
        assert holder == {0: first, 1: second}
        assert factory.technique_name == "CounterTree"

    def test_kwargs_forwarded(self):
        from repro.mitigations.para import PARA

        holder = {}
        factory = make_capturing_factory(PARA, holder, probability=0.5)
        assert factory(small_test_config(), 0, 0).probability == 0.5


class TestResolveTechnique:
    def test_case_insensitive(self):
        assert resolve_technique("lipromi") == "LiPRoMi"
        assert resolve_technique("PARA") == "PARA"
        assert resolve_technique("countertree") == "CounterTree"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            resolve_technique("NoSuch")
