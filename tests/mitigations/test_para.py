"""Tests for PARA."""

import pytest

from repro.config import small_test_config
from repro.mitigations.base import RefreshRow
from repro.mitigations.para import PARA


class TestConstruction:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            PARA(small_test_config(), probability=0.0)
        with pytest.raises(ValueError):
            PARA(small_test_config(), probability=1.5)

    def test_stateless_zero_table(self):
        assert PARA(small_test_config()).table_bytes == 0

    def test_known_vulnerable(self):
        assert PARA.known_vulnerabilities


class TestBehavior:
    def test_trigger_rate_matches_probability(self):
        para = PARA(small_test_config(), seed=1, probability=0.05)
        triggers = sum(
            1 for _ in range(20_000) if para.on_activation(100, 0)
        )
        # Binomial(20000, 0.05): mean 1000, sigma ~31; allow 6 sigma
        assert 800 < triggers < 1200

    def test_action_refreshes_a_neighbor(self):
        para = PARA(small_test_config(), seed=1, probability=1.0)
        (action,) = para.on_activation(100, 0)
        assert isinstance(action, RefreshRow)
        assert action.row in (99, 101)
        assert action.trigger_row == 100

    def test_single_neighbor_at_edge(self):
        para = PARA(small_test_config(), seed=1, probability=1.0)
        (action,) = para.on_activation(0, 0)
        assert action.row == 1

    def test_both_sides_eventually_chosen(self):
        para = PARA(small_test_config(), seed=1, probability=1.0)
        sides = {para.on_activation(100, 0)[0].row for _ in range(64)}
        assert sides == {99, 101}

    def test_deterministic_per_seed(self):
        a = PARA(small_test_config(), seed=9, probability=0.5)
        b = PARA(small_test_config(), seed=9, probability=0.5)
        seq_a = [bool(a.on_activation(50, 0)) for _ in range(100)]
        seq_b = [bool(b.on_activation(50, 0)) for _ in range(100)]
        assert seq_a == seq_b

    def test_probability_independent_of_interval(self):
        """PARA is static: the interval argument must not matter."""
        para = PARA(small_test_config(), seed=4, probability=0.5)
        counts = [
            sum(1 for _ in range(500) if para.on_activation(50, interval))
            for interval in (0, 1000)
        ]
        assert abs(counts[0] - counts[1]) < 120
