"""Tests for TWiCe counters, pruning, and capacity bound."""


from repro.config import small_test_config
from repro.mitigations.base import ActivateNeighbors
from repro.mitigations.twice import TWiCe


def make(flip_threshold=400):
    return TWiCe(small_test_config(flip_threshold=flip_threshold))


class TestTrigger:
    def test_trigger_threshold_is_quarter_flip(self):
        assert make(flip_threshold=400).trigger_threshold == 100

    def test_triggers_act_n_at_threshold(self):
        twice = make(flip_threshold=8)  # trigger at 2
        assert twice.on_activation(50, 1) == ()
        actions = twice.on_activation(50, 1)
        assert actions == (ActivateNeighbors(row=50),)

    def test_count_resets_after_trigger(self):
        twice = make(flip_threshold=8)
        twice.on_activation(50, 1)
        twice.on_activation(50, 1)  # triggered
        assert twice.on_activation(50, 1) == ()  # counting restarts

    def test_not_vulnerable(self):
        assert TWiCe.known_vulnerabilities == ()


class TestPruning:
    def test_slow_rows_pruned(self):
        twice = make(flip_threshold=40_000)  # rate threshold ~156/interval
        twice.on_activation(50, 1)
        assert twice.occupancy == 1
        twice.on_refresh(2)
        assert twice.occupancy == 0

    def test_fast_rows_survive_pruning(self):
        config = small_test_config(flip_threshold=400)
        twice = TWiCe(config)
        # rate threshold = 100 / 64 intervals ~= 1.6 acts/interval
        for _ in range(10):
            twice.on_activation(50, 1)
        twice.on_refresh(2)
        assert twice.occupancy == 1

    def test_window_start_clears_table(self):
        twice = make()
        for _ in range(5):
            twice.on_activation(50, 1)
        refint = twice.refint
        twice.on_refresh(refint)  # window-relative interval 0
        assert twice.occupancy == 0

    def test_life_accumulates_until_pruned(self):
        config = small_test_config(flip_threshold=512)  # rate = 2/interval
        twice = TWiCe(config)
        for _ in range(8):
            twice.on_activation(50, 1)  # count 8 covers 4 intervals of life
        survived = 0
        for interval in range(2, 8):
            twice.on_refresh(interval)
            survived = twice.occupancy
            if survived == 0:
                break
        assert survived == 0  # eventually pruned without further acts


class TestCapacity:
    def test_analytic_capacity_bounds_occupancy(self):
        config = small_test_config(flip_threshold=2_000)
        twice = TWiCe(config)
        from repro.rng import stream

        rng = stream(0, "twice-capacity")
        for interval in range(1, 64):
            for _ in range(60):
                twice.on_activation(rng.randrange(512), interval)
            twice.on_refresh(interval)
        assert twice.max_occupancy <= max(
            twice.analytic_capacity,
            config.timing.max_acts_per_interval * 2,
        )

    def test_paper_scale_capacity_in_hundreds(self):
        from repro.config import SimConfig

        twice = TWiCe(SimConfig())
        assert 300 < twice.analytic_capacity < 900

    def test_paper_scale_table_kb_range(self):
        """TWiCe's table must be KBs per bank (the 9x-27x claim)."""
        from repro.config import SimConfig

        twice = TWiCe(SimConfig())
        assert 1_000 < twice.table_bytes < 10_000
