"""Tests for ProHit's hot/cold table mechanics."""

import pytest

from repro.config import small_test_config
from repro.mitigations.base import RefreshRow
from repro.mitigations.prohit import ProHit


def make(**kwargs):
    defaults = dict(seed=1, hot_entries=2, cold_entries=4, insert_probability=1.0)
    defaults.update(kwargs)
    return ProHit(small_test_config(), **defaults)


class TestConstruction:
    def test_rejects_empty_tables(self):
        with pytest.raises(ValueError):
            make(hot_entries=0)
        with pytest.raises(ValueError):
            make(cold_entries=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            make(insert_probability=0.0)

    def test_table_bytes_scales_with_entries(self):
        small = ProHit(small_test_config(), hot_entries=4, cold_entries=12)
        large = ProHit(small_test_config(), hot_entries=8, cold_entries=24)
        assert large.table_bytes == 2 * small.table_bytes

    def test_marked_vulnerable_to_non_selection(self):
        # Loaded Dice (arXiv:2605.17358) documents the non-selection
        # bypass against ProHit's probabilistic promotion
        assert len(ProHit.known_vulnerabilities) == 1
        assert "non-selection" in ProHit.known_vulnerabilities[0]


class TestTables:
    def test_activation_inserts_victims_into_cold(self):
        prohit = make()
        prohit.on_activation(100, 0)
        assert set(prohit._cold) == {99, 101}

    def test_no_immediate_action_on_activation(self):
        prohit = make()
        assert prohit.on_activation(100, 0) == ()

    def test_cold_hits_climb_then_promote(self):
        prohit = make()
        prohit.on_activation(100, 0)        # cold: [99, 101]
        prohit.on_activation(100, 0)        # both climb/promote
        prohit.on_activation(100, 0)
        assert 99 in prohit._hot or 101 in prohit._hot

    def test_cold_table_capacity_respected(self):
        prohit = make(cold_entries=3)
        for row in (10, 20, 30, 40):
            prohit.on_activation(row, 0)
        assert len(prohit._cold) <= 3

    def test_hot_capacity_respected_with_fallback_to_cold(self):
        prohit = make(hot_entries=1, cold_entries=4)
        for _ in range(3):
            prohit.on_activation(100, 0)
            prohit.on_activation(200, 0)
        assert len(prohit._hot) <= 1


class TestRefresh:
    def test_refresh_pops_top_hot_entry(self):
        prohit = make()
        for _ in range(3):
            prohit.on_activation(100, 0)
        hot_before = list(prohit._hot)
        actions = prohit.on_refresh(1)
        assert len(actions) == 1
        (action,) = actions
        assert isinstance(action, RefreshRow)
        assert action.row == hot_before[0]
        assert action.row not in prohit._hot

    def test_refresh_with_empty_hot_is_noop(self):
        assert make().on_refresh(0) == ()

    def test_trigger_attribution_points_at_aggressor(self):
        prohit = make()
        for _ in range(3):
            prohit.on_activation(100, 0)
        (action,) = prohit.on_refresh(1)
        assert action.trigger_row == 100

    def test_repeated_refreshes_drain_hot_table(self):
        prohit = make(hot_entries=2)
        for _ in range(6):
            prohit.on_activation(100, 0)
        drained = 0
        for interval in range(5):
            drained += len(prohit.on_refresh(interval))
        assert drained >= 1
        assert prohit._hot == []


class TestProbabilisticInsertion:
    def test_low_probability_rarely_inserts(self):
        prohit = ProHit(
            small_test_config(), seed=3, insert_probability=0.001,
            hot_entries=2, cold_entries=4,
        )
        for row in range(2, 300):
            prohit.on_activation(row, 0)
        assert len(prohit._cold) + len(prohit._hot) <= 4
