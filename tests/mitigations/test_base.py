"""Tests for the mitigation interface and action types."""

from repro.config import small_test_config
from repro.mitigations.base import (
    ActivateNeighbors,
    RefreshRow,
    actions_as_rows,
    total_extra_activations,
)
from repro.mitigations.para import PARA


class TestActions:
    def test_act_n_trigger_row_is_row(self):
        action = ActivateNeighbors(row=5)
        assert action.trigger_row == 5

    def test_refresh_row_carries_trigger(self):
        action = RefreshRow(row=4, trigger_row=5)
        assert action.row == 4
        assert action.trigger_row == 5

    def test_actions_are_hashable_values(self):
        assert ActivateNeighbors(row=5) == ActivateNeighbors(row=5)
        assert len({ActivateNeighbors(5), ActivateNeighbors(5)}) == 1


class TestHelpers:
    def test_total_extra_activations_mixed(self):
        def neighbor_count(row):
            return 1 if row == 0 else 2

        actions = [
            ActivateNeighbors(row=0),   # edge: 1
            ActivateNeighbors(row=5),   # interior: 2
            RefreshRow(row=3, trigger_row=4),  # 1
        ]
        assert total_extra_activations(actions, neighbor_count) == 4

    def test_actions_as_rows(self):
        actions = [ActivateNeighbors(row=7), RefreshRow(row=2, trigger_row=3)]
        assert actions_as_rows(actions) == [7, 2]


class TestMitigationBase:
    def test_window_interval_wraps(self):
        config = small_test_config()
        mitigation = PARA(config)
        refint = config.geometry.refint
        assert mitigation.window_interval(0) == 0
        assert mitigation.window_interval(refint) == 0
        assert mitigation.window_interval(refint + 3) == 3

    def test_describe_mentions_name_and_size(self):
        mitigation = PARA(small_test_config(), bank=2)
        text = mitigation.describe()
        assert "PARA" in text
        assert "bank 2" in text

    def test_default_on_refresh_is_noop(self):
        mitigation = PARA(small_test_config())
        assert mitigation.on_refresh(0) == ()
