"""Tests for the adaptive counter tree."""

import pytest

from repro.config import small_test_config
from repro.mitigations.base import ActivateNeighbors
from repro.mitigations.counter_tree import CounterTree


def make(flip_threshold=4096, node_budget=64, split_divisor=16):
    config = small_test_config(flip_threshold=flip_threshold)
    return CounterTree(
        config, node_budget=node_budget, split_divisor=split_divisor
    )


class TestConstruction:
    def test_thresholds_derived(self):
        tree = make(flip_threshold=4096, split_divisor=16)
        assert tree.trigger_threshold == 1024
        assert tree.split_threshold == 64

    def test_rejects_tiny_budget(self):
        config = small_test_config()
        with pytest.raises(ValueError):
            CounterTree(config, node_budget=2)

    def test_starts_as_single_root(self):
        tree = make()
        assert tree.node_count == 1
        assert tree.leaf_sizes() == [512]

    def test_marked_vulnerable_to_saturation(self):
        assert any("saturation" in v for v in CounterTree.known_vulnerabilities)


class TestSplitting:
    def test_hot_region_gets_refined(self):
        tree = make()
        for _ in range(tree.split_threshold):
            tree.on_activation(100, 1)
        assert tree.node_count > 1
        assert tree.finest_size_covering(100) < 512

    def test_refinement_reaches_single_row(self):
        tree = make(node_budget=64)
        for _ in range(tree.trigger_threshold):
            if tree.on_activation(100, 1):
                break
        assert tree.finest_size_covering(100) == 1

    def test_cold_regions_stay_coarse(self):
        tree = make()
        for _ in range(tree.split_threshold * 4):
            tree.on_activation(100, 1)
        assert tree.finest_size_covering(400) > 1

    def test_leaves_partition_the_bank(self):
        tree = make()
        from repro.rng import stream

        rng = stream(0, "tree-test")
        for _ in range(3000):
            tree.on_activation(rng.randrange(512), 1)
        assert sum(tree.leaf_sizes()) == 512

    def test_budget_caps_node_count(self):
        tree = make(node_budget=15)
        from repro.rng import stream

        rng = stream(0, "tree-budget")
        for _ in range(5000):
            tree.on_activation(rng.randrange(512), 1)
        assert tree.node_count <= 15


class TestTrigger:
    def test_isolated_aggressor_triggers_act_n(self):
        tree = make()
        actions = ()
        for _ in range(2 * tree.trigger_threshold):
            actions = tree.on_activation(100, 1)
            if actions:
                break
        assert actions == (ActivateNeighbors(row=100),)
        assert tree.coarse_triggers == 0

    def test_saturated_tree_triggers_coarse_burst(self):
        tree = make(node_budget=3)  # root + one split only
        actions = ()
        for _ in range(2 * tree.trigger_threshold):
            actions = tree.on_activation(100, 1)
            if actions:
                break
        assert len(actions) > 1  # whole-range refresh burst
        assert tree.coarse_triggers == 1

    def test_trigger_resets_count(self):
        tree = make()
        fired = 0
        for _ in range(5 * tree.trigger_threshold):
            if tree.on_activation(100, 1):
                fired += 1
        assert fired >= 2  # keeps firing periodically, not once


class TestWindowReset:
    def test_tree_reset_at_window_start(self):
        tree = make()
        for _ in range(tree.split_threshold * 2):
            tree.on_activation(100, 1)
        assert tree.node_count > 1
        tree.on_refresh(tree.refint)  # new window
        assert tree.node_count == 1

    def test_mid_window_refresh_keeps_tree(self):
        tree = make()
        for _ in range(tree.split_threshold * 2):
            tree.on_activation(100, 1)
        nodes = tree.node_count
        tree.on_refresh(5)
        assert tree.node_count == nodes


class TestStorage:
    def test_table_bytes_scale_with_budget(self):
        small = make(node_budget=64)
        large = make(node_budget=256)
        assert large.table_bytes == 4 * small.table_bytes

    def test_paper_scale_budget_near_1kb(self):
        """[10]: effective trees need no less than ~1 KB per bank."""
        from repro.config import SimConfig

        tree = CounterTree(SimConfig())
        assert 900 < tree.table_bytes < 2048


class TestProtection:
    def test_prevents_flip_end_to_end(self):
        from repro.mitigations.registry import make_factory
        from repro.sim.engine import run_simulation
        from repro.traces.attacker import double_sided
        from repro.traces.mixer import build_trace

        config = small_test_config(rows_per_bank=4096, flip_threshold=40_000)
        attack = double_sided(
            config.geometry, bank=0, victim=100, acts_per_interval=165
        )
        trace = build_trace(config, total_intervals=512, attacks=[attack])
        result = run_simulation(
            config, trace, make_factory("CounterTree"), seed=1
        )
        assert not result.attack_succeeded
