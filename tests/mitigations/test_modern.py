"""Unit and property tests for the modern tracker families.

Covers the Loaded Dice sampler, RVC's victim-centric counters, PVAC's
exhaustive per-victim counters, the PRAC/PRACtical activation counters
with their ALERT recovery channel, and the probabilistic
tracker-management policies -- plus the registry tiers, the
``RecoveryRefresh`` action and the subarray-aware geometry they rely
on.  The Hypothesis properties pin the invariants the run-batched
``observe_run`` fast paths depend on: bounded occupancy, counter
monotonicity between triggers, and exact equivalence between the
batched and the per-record observation paths.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import small_test_config
from repro.dram.refresh import RecoveryChannel
from repro.mitigations.base import (
    ActivateNeighbors,
    RecoveryRefresh,
    RefreshRow,
    total_extra_activations,
)
from repro.mitigations.modern import (
    PRAC,
    PVAC,
    RVC,
    LoadedDice,
    PRACtical,
    ProbabilisticTracker,
)
from repro.mitigations.registry import (
    MODERN_TECHNIQUES,
    make_mitigation,
    resolve_technique,
    technique_names,
    technique_tier,
)

CONFIG = small_test_config()
SUBARRAY_CONFIG = small_test_config(num_banks=2, subarrays_per_bank=4)

MODERN_CLASSES = {
    "LoadedDice": LoadedDice,
    "RVC": RVC,
    "PVAC": PVAC,
    "PRAC": PRAC,
    "PRACtical": PRACtical,
    "ProbTracker": ProbabilisticTracker,
}


class TestRegistryTiers:
    def test_modern_names_registered(self):
        assert set(MODERN_TECHNIQUES) == set(MODERN_CLASSES)
        names = technique_names(include_modern=True)
        for name in MODERN_CLASSES:
            assert name in names

    def test_default_names_unchanged(self):
        """The paper's nine-row default is untouched by the new tier."""
        assert len(technique_names()) == 9
        assert not set(technique_names()) & set(MODERN_TECHNIQUES)

    def test_tiers(self):
        assert technique_tier("PARA") == "paper"
        assert technique_tier("CounterTree") == "extended"
        for name in MODERN_CLASSES:
            assert technique_tier(name) == "modern"
        with pytest.raises(ValueError):
            technique_tier("nope")

    def test_resolve_spans_modern(self):
        for name in MODERN_CLASSES:
            assert resolve_technique(name.lower()) == name

    def test_every_modern_name_instantiates(self):
        for name, cls in MODERN_CLASSES.items():
            mitigation = make_mitigation(name, CONFIG, bank=0, seed=1)
            assert isinstance(mitigation, cls)
            assert mitigation.name == name
            assert mitigation.table_bytes >= 0
            assert isinstance(cls.known_vulnerabilities, tuple)


class TestRecoveryRefresh:
    def test_row_property_is_trigger(self):
        action = RecoveryRefresh(rows=(3, 5), trigger_row=5)
        assert action.row == 5

    def test_cost_sums_neighbor_counts(self):
        geometry = CONFIG.geometry
        edge = 0
        middle = geometry.rows_per_bank // 2
        actions = [
            RecoveryRefresh(rows=(edge, middle), trigger_row=middle),
            RefreshRow(row=middle, trigger_row=middle),
            ActivateNeighbors(row=edge),
        ]
        counts = lambda row: len(geometry.neighbors(row))  # noqa: E731
        assert total_extra_activations(actions, counts) == (1 + 2) + 1 + 1


class TestRecoveryChannel:
    def test_fifo_and_stats(self):
        channel = RecoveryChannel()
        channel.raise_alert(bank=0, subarray=1, row=10, interval=3)
        channel.raise_alert(bank=0, subarray=0, row=4, interval=3)
        assert len(channel) == 2
        assert channel.alerts_raised == 2
        assert channel.max_depth == 2
        events = channel.drain()
        assert [event.row for event in events] == [10, 4]
        assert len(channel) == 0
        assert channel.drain() == []

    def test_drain_by_subarray_groups_in_first_alert_order(self):
        channel = RecoveryChannel()
        for subarray, row in ((2, 20), (0, 1), (2, 21), (0, 2)):
            channel.raise_alert(bank=0, subarray=subarray, row=row, interval=0)
        grouped = channel.drain_by_subarray()
        assert list(grouped) == [2, 0]
        assert [event.row for event in grouped[2]] == [20, 21]
        assert [event.row for event in grouped[0]] == [1, 2]


class TestSubarrayGeometry:
    def test_neighbors_confined_to_subarray(self):
        geometry = SUBARRAY_CONFIG.geometry
        width = geometry.rows_per_subarray
        assert geometry.neighbors(0) == (1,)
        assert geometry.neighbors(width - 1) == (width - 2,)
        assert geometry.neighbors(width) == (width + 1,)
        assert geometry.neighbors(width + 1) == (width, width + 2)

    def test_subarray_of(self):
        geometry = SUBARRAY_CONFIG.geometry
        width = geometry.rows_per_subarray
        assert geometry.subarray_of(0) == 0
        assert geometry.subarray_of(width) == 1
        assert geometry.subarray_of(geometry.rows_per_bank - 1) == 3

    def test_single_subarray_matches_flat_geometry(self):
        geometry = CONFIG.geometry
        row = geometry.rows_per_bank // 2
        assert geometry.neighbors(row) == (row - 1, row + 1)
        assert geometry.neighbors(0) == (1,)

    def test_invalid_subarray_counts_rejected(self):
        with pytest.raises(ValueError):
            small_test_config(rows_per_bank=512, subarrays_per_bank=7)
        with pytest.raises(ValueError):
            small_test_config(rows_per_bank=8, rows_per_interval=2,
                              subarrays_per_bank=8)


class TestLoadedDice:
    def test_occupancy_bounded(self):
        dice = LoadedDice(CONFIG, seed=0, entries=4, probability=1e-9)
        for row in range(40):
            dice.on_activation(row * 2, interval=0)
        assert dice.max_occupancy == 4

    def test_selection_is_a_tracked_aggressor(self):
        dice = LoadedDice(CONFIG, seed=3, entries=8, probability=1.0)
        tracked = (10, 20, 30)
        for row in tracked:
            actions = dice.on_activation(row, interval=0)
            assert len(actions) == 1
            assert isinstance(actions[0], ActivateNeighbors)
            assert actions[0].row in tracked


class TestRVC:
    def test_trigger_refreshes_the_victim(self):
        rvc = RVC(CONFIG, trigger_threshold=3)
        row = 100
        actions = []
        for _ in range(3):
            actions = rvc.on_activation(row, interval=0)
        refreshed = {a.row for a in actions if isinstance(a, RefreshRow)}
        assert refreshed == {99, 101}

    def test_counters_cleared_on_refresh_window(self):
        rvc = RVC(CONFIG, trigger_threshold=50)
        victim = 99
        rvc.on_activation(100, interval=0)
        assert rvc.counter(victim) > 0
        # the interval whose refresh slot covers the victim row
        interval = victim // CONFIG.geometry.rows_per_interval
        rvc.on_refresh(interval)
        assert rvc.counter(victim) == 0

    def test_eviction_under_pressure(self):
        rvc = RVC(CONFIG, entries=4, trigger_threshold=1000)
        for row in range(0, 64, 4):
            rvc.on_activation(row, interval=0)
        assert rvc.evictions > 0


class TestPRACFamily:
    def test_prac_emits_recovery_refresh(self):
        prac = PRAC(CONFIG, back_off_threshold=2)
        row = 50
        assert prac.on_activation(row, interval=0) == ()
        actions = prac.on_activation(row, interval=0)
        assert len(actions) == 1
        assert isinstance(actions[0], RecoveryRefresh)
        assert actions[0].rows == (row,)
        assert prac.channel.alerts_raised == 1

    def test_practical_batches_per_subarray(self):
        config = SUBARRAY_CONFIG
        practical = PRACtical(config, back_off_threshold=1)
        width = config.geometry.rows_per_subarray
        rows = (1, 3, width + 5)
        for row in rows:
            assert practical.on_activation(row, interval=0) == ()
        actions = practical.on_refresh(interval=0)
        recoveries = [a for a in actions if isinstance(a, RecoveryRefresh)]
        assert len(recoveries) == 2  # one batch per alerted subarray
        assert recoveries[0].rows == (1, 3)
        assert recoveries[1].rows == (width + 5,)
        assert practical.subarray_recoveries[0] == 1
        assert practical.subarray_recoveries[1] == 1


@st.composite
def activation_runs(draw):
    """A row plus a split of one activation run into two chunks."""
    row = draw(st.integers(min_value=1, max_value=510))
    count = draw(st.integers(min_value=1, max_value=64))
    interval = draw(st.integers(min_value=0, max_value=15))
    return row, count, interval


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=st.sampled_from(sorted(MODERN_CLASSES)),
    runs=st.lists(activation_runs(), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=20),
)
def test_observe_run_matches_per_record_path(name, runs, seed):
    """The run-batched observation path must replay exactly like the
    per-record ``on_activation`` loop: same actions at the same
    activation index, run after run.  This is the ``decide_run``
    contract the fast/fused engines rely on for exactness."""
    batched = make_mitigation(name, CONFIG, bank=0, seed=seed)
    scalar = make_mitigation(name, CONFIG, bank=0, seed=seed)
    for row, count, interval in runs:
        remaining = count
        while remaining:
            clean, actions = batched.observe_run(row, interval, remaining)
            if clean == remaining:
                # whole chunk clean: the scalar path must fire nothing
                for index in range(remaining):
                    step = scalar.on_activation(row, interval)
                    assert not step, (
                        f"{name}: scalar fired at act {index}, batched "
                        f"saw {remaining} clean acts"
                    )
                break
            assert 0 <= clean < remaining
            for index in range(clean):
                step = scalar.on_activation(row, interval)
                assert not step, (
                    f"{name}: scalar fired early at act {index}, batched "
                    f"said {clean} clean acts"
                )
            step = scalar.on_activation(row, interval)
            assert list(step) == list(actions)
            remaining -= clean + 1


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=st.sampled_from(["RVC", "PVAC", "PRAC"]),
    count=st.integers(min_value=1, max_value=50),
)
def test_deterministic_counters_monotone_until_trigger(name, count):
    """Below the trigger threshold, the deterministic families grow
    their counter by exactly one per activation -- no decay, no skips."""
    kwargs = (
        {"back_off_threshold": 10_000}
        if name == "PRAC"
        else {"trigger_threshold": 10_000}
    )
    mitigation = make_mitigation(name, CONFIG, bank=0, seed=0, **kwargs)
    row = 100
    tracked = row if name == "PRAC" else row + 1  # PRAC counts aggressors
    for step in range(1, count + 1):
        assert mitigation.on_activation(row, interval=0) == ()
        assert mitigation.counter(tracked) == step


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    entries=st.integers(min_value=1, max_value=8),
    rows=st.lists(st.integers(min_value=1, max_value=510),
                  min_size=1, max_size=60),
    seed=st.integers(min_value=0, max_value=10),
)
def test_bounded_tables_never_exceed_capacity(entries, rows, seed):
    """LoadedDice, RVC and ProbTracker must respect their configured
    table capacity under any activation pattern."""
    dice = LoadedDice(CONFIG, seed=seed, entries=entries, probability=0.5)
    rvc = RVC(CONFIG, entries=entries, trigger_threshold=10_000)
    tracker = ProbabilisticTracker(
        CONFIG, seed=seed, entries=entries, insert_probability=0.5
    )
    for row in rows:
        dice.on_activation(row, interval=0)
        rvc.on_activation(row, interval=0)
        tracker.on_activation(row, interval=0)
    assert dice.max_occupancy <= entries
    assert rvc.max_occupancy <= entries
    assert tracker.max_occupancy <= entries


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    threshold=st.integers(min_value=1, max_value=16),
    count=st.integers(min_value=1, max_value=200),
)
def test_practical_alert_accounting(threshold, count):
    """PRACtical queues exactly floor(count / threshold) alerts for a
    single hammered row and keeps the remainder in the counter."""
    practical = PRACtical(CONFIG, back_off_threshold=threshold)
    row = 50
    clean, actions = practical.observe_run(row, 0, count)
    assert clean == count and actions == ()
    expected_alerts, remainder = divmod(count, threshold)
    assert practical.channel.alerts_raised == expected_alerts
    assert practical._counters.get(row, 0) == remainder
