"""Tests for the ANVIL-class software detector."""

import pytest

from repro.config import small_test_config
from repro.mitigations.base import ActivateNeighbors
from repro.mitigations.software import SoftwareDetector


def make(**kwargs):
    defaults = dict(
        seed=1, sample_probability=1.0, suspicion_fraction=0.1,
        confirmation_windows=2,
    )
    defaults.update(kwargs)
    return SoftwareDetector(small_test_config(), **defaults)


def hammer_window(detector, row, interval_base, acts_per_interval=50):
    """One window of hammering *row*, driving refreshes like the engine."""
    refint = detector.refint
    actions = []
    for interval in range(interval_base, interval_base + refint):
        actions.extend(detector.on_refresh(interval))
        for _ in range(acts_per_interval):
            detector.on_activation(row, interval)
    return actions


class TestConstruction:
    def test_rejects_bad_sampling(self):
        with pytest.raises(ValueError):
            make(sample_probability=0.0)

    def test_rejects_bad_confirmation(self):
        with pytest.raises(ValueError):
            make(confirmation_windows=0)

    def test_no_controller_sram(self):
        assert make().table_bytes == 0

    def test_latency_documented_as_vulnerability(self):
        assert any(
            "latency" in item for item in SoftwareDetector.known_vulnerabilities
        )


class TestDetection:
    def test_no_action_during_first_windows(self):
        detector = make()
        actions = hammer_window(detector, 100, 0)
        assert actions == []  # window 0: nothing confirmed yet

    def test_confirmation_after_configured_windows(self):
        detector = make(confirmation_windows=2)
        refint = detector.refint
        hammer_window(detector, 100, 0)          # window 0 sampled
        hammer_window(detector, 100, refint)     # analysis(1): suspicious
        hammer_window(detector, 100, 2 * refint)  # analysis(2): confirmed
        assert 100 in detector.detections
        assert detector.detections[100] == 2

    def test_quarantine_refreshes_every_interval(self):
        detector = make(confirmation_windows=1)
        refint = detector.refint
        hammer_window(detector, 100, 0)
        actions = hammer_window(detector, 100, refint)
        # once confirmed, every interval's ref returns an act_n
        assert actions.count(ActivateNeighbors(row=100)) >= refint - 1

    def test_quiet_aggressor_released(self):
        detector = make(confirmation_windows=1)
        refint = detector.refint
        hammer_window(detector, 100, 0)
        hammer_window(detector, 100, refint)  # confirmed
        # two idle windows: no activations at all
        for interval in range(2 * refint, 4 * refint):
            detector.on_refresh(interval)
        actions = list(detector.on_refresh(4 * refint))
        assert actions == []

    def test_benign_spread_traffic_not_flagged(self):
        detector = make(suspicion_fraction=0.1)
        refint = detector.refint
        from repro.rng import stream

        rng = stream(3, "benign")
        for interval in range(2 * refint):
            detector.on_refresh(interval)
            for _ in range(30):
                detector.on_activation(rng.randrange(512), interval)
        assert detector.detections == {}

    def test_sampling_misses_with_low_probability(self):
        detector = make(sample_probability=0.01, confirmation_windows=1)
        # a short burst is unlikely to build a stable sampled histogram
        for _ in range(20):
            detector.on_activation(100, 1)
        assert detector._sampled < 10


class TestHeadToHead:
    def test_software_loses_the_latency_race(self):
        """Section II: flips land before detection; hardware has none."""
        from repro.sim.attacks import software_detection_experiment

        config = small_test_config(rows_per_bank=4096, flip_threshold=30_000)
        outcome = software_detection_experiment(config, windows=4, rate=120)
        assert outcome.detected
        assert outcome.latency_windows >= 1  # "several refresh windows"
        assert outcome.software_flips_before_detection > 0
        assert outcome.software_flips_after_detection == 0
        assert outcome.hardware_flips == 0
