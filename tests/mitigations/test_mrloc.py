"""Tests for MRLoc's locality queue and weighted probabilities."""

import pytest

from repro.config import small_test_config
from repro.mitigations.mrloc import MRLoc


def make(**kwargs):
    defaults = dict(seed=1, queue_entries=8, base_probability=0.01, max_boost=4.0)
    defaults.update(kwargs)
    return MRLoc(small_test_config(), **defaults)


class TestConstruction:
    def test_rejects_bad_queue(self):
        with pytest.raises(ValueError):
            make(queue_entries=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            make(base_probability=0.0)

    def test_rejects_bad_boost(self):
        with pytest.raises(ValueError):
            make(max_boost=0.5)

    def test_table_bytes_positive_and_scales(self):
        assert make(queue_entries=16).table_bytes == 2 * make(queue_entries=8).table_bytes

    def test_marked_vulnerable(self):
        assert MRLoc.known_vulnerabilities


class TestProbabilityWeighting:
    def test_miss_gets_base_probability(self):
        mrloc = make()
        assert mrloc.victim_probability(42) == pytest.approx(0.01)

    def test_hit_gets_boost(self):
        mrloc = make()
        mrloc.on_activation(100, 0)  # pushes victims 99 and 101
        assert mrloc.victim_probability(99) > 0.01
        assert mrloc.victim_probability(101) > 0.01

    def test_recency_increases_boost(self):
        mrloc = make(queue_entries=8)
        mrloc.on_activation(10, 0)   # victims 9, 11 (older)
        mrloc.on_activation(100, 0)  # victims 99, 101 (newer)
        assert mrloc.victim_probability(101) > mrloc.victim_probability(9)

    def test_boost_capped_at_max(self):
        mrloc = make(base_probability=0.1, max_boost=4.0)
        mrloc.on_activation(100, 0)
        assert mrloc.victim_probability(101) <= 0.4 + 1e-12

    def test_probability_never_exceeds_one(self):
        mrloc = make(base_probability=0.9, max_boost=4.0)
        mrloc.on_activation(100, 0)
        assert mrloc.victim_probability(101) <= 1.0


class TestQueue:
    def test_queue_bounded(self):
        mrloc = make(queue_entries=4)
        for row in range(10, 40, 2):
            mrloc.on_activation(row, 0)
        assert len(mrloc._queue) == 4

    def test_rehit_moves_to_tail(self):
        mrloc = make(queue_entries=8)
        mrloc.on_activation(10, 0)
        mrloc.on_activation(100, 0)
        mrloc.on_activation(10, 0)  # victims 9/11 re-pushed
        assert list(mrloc._queue)[-1] in (9, 11)

    def test_thrashing_removes_locality(self):
        """The documented multi-aggressor weakness: many distinct
        aggressors evict every victim before it is seen again."""
        mrloc = make(queue_entries=4)
        aggressors = [10, 20, 30, 40, 50, 60]
        for _ in range(5):
            for row in aggressors:
                mrloc.on_activation(row, 0)
        # by the time row 10's victims come around again they are gone
        assert mrloc.victim_probability(9) == pytest.approx(0.01)
        assert mrloc.victim_probability(11) == pytest.approx(0.01)


class TestActions:
    def test_certain_trigger_refreshes_victims(self):
        mrloc = make(base_probability=1.0)
        actions = mrloc.on_activation(100, 0)
        assert {action.row for action in actions} == {99, 101}
        assert all(action.trigger_row == 100 for action in actions)

    def test_trigger_rate_scales_with_locality(self):
        cold = make(seed=7, base_probability=0.02)
        hot = make(seed=7, base_probability=0.02)
        cold_triggers = 0
        hot_triggers = 0
        for index in range(4000):
            # cold: always-new rows; hot: one hammered row
            cold_triggers += len(cold.on_activation(2 + (index * 3) % 400, 0))
            hot_triggers += len(hot.on_activation(100, 0))
        assert hot_triggers > cold_triggers
