"""Cross-module property-based tests on simulation invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import small_test_config
from repro.mitigations.registry import make_factory, technique_names
from repro.sim.engine import run_simulation
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace
from repro.traces.record import validate_trace
from repro.traces.workload import WorkloadParams

techniques = st.sampled_from(technique_names())


def small_trace(config, seed, rate, aggressor):
    attack = AttackSpec(
        bank=0,
        aggressors=(aggressor,),
        acts_per_interval=rate,
        name="prop",
    )
    return build_trace(
        config,
        total_intervals=16,
        benign_params=WorkloadParams(avg_acts_per_interval=8),
        attacks=[attack],
        seed=seed,
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    technique=techniques,
    seed=st.integers(min_value=0, max_value=100),
    rate=st.integers(min_value=1, max_value=60),
    aggressor=st.integers(min_value=1, max_value=510),
)
def test_engine_invariants(technique, seed, rate, aggressor):
    """Invariants that must hold for every technique and trace:

    * false-positive extras never exceed total extras;
    * mitigation triggers never exceed normal activations plus
      intervals (one collective decision per interval at most for the
      per-activation techniques, a batch per interval for CaPRoMi);
    * disturbance stays non-negative and the protection margin in
      [0, 1];
    * the trace itself is well-formed.
    """
    config = small_test_config(flip_threshold=10_000)
    trace = small_trace(config, seed, rate, aggressor).materialize()
    assert validate_trace(trace, act_to_act_ns=45) == []
    result = run_simulation(config, trace, make_factory(technique), seed=seed)
    assert 0 <= result.fp_extra_activations <= result.extra_activations
    assert result.normal_activations == trace.count()
    assert result.attack_activations <= result.normal_activations
    assert 0.0 <= result.protection_margin <= 1.0
    assert result.max_disturbance >= 0
    assert result.intervals_simulated == 16
    assert result.extra_activations <= 2 * result.mitigation_triggers + 2


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50))
def test_unmitigated_run_never_issues_extras(seed):
    config = small_test_config(flip_threshold=10_000)
    trace = small_trace(config, seed, rate=30, aggressor=100)
    result = run_simulation(config, trace, None, seed=seed)
    assert result.extra_activations == 0
    assert result.fp_extra_activations == 0
    assert result.mitigation_triggers == 0


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=50),
    technique=techniques,
)
def test_mitigation_never_increases_peak_disturbance(seed, technique):
    """A mitigation may only *restore* rows: the worst-case disturbance
    with mitigation must not exceed the unmitigated worst case by more
    than the act_n side effect (act_n activations disturb second-order
    neighbours by one each)."""
    config = small_test_config(flip_threshold=10 ** 6)
    trace = small_trace(config, seed, rate=50, aggressor=100).materialize()
    unmitigated = run_simulation(config, trace, None, seed=seed)
    mitigated = run_simulation(config, trace, make_factory(technique), seed=seed)
    slack = mitigated.mitigation_triggers + 1
    assert mitigated.max_disturbance <= unmitigated.max_disturbance + slack


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1000),
    technique=techniques,
)
def test_simulation_is_deterministic(seed, technique):
    config = small_test_config(flip_threshold=10_000)
    results = []
    for _ in range(2):
        trace = small_trace(config, seed, rate=20, aggressor=50)
        result = run_simulation(config, trace, make_factory(technique), seed=seed)
        results.append(
            (
                result.normal_activations,
                result.extra_activations,
                result.fp_extra_activations,
                result.max_disturbance,
            )
        )
    assert results[0] == results[1]
