"""Tests for repro.config: Table I parameters and geometry math."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    DDR3_TIMING,
    DRAMGeometry,
    DRAMTiming,
    FLIP_THRESHOLD,
    HALF_FLIP_THRESHOLD,
    PBASE_PAPER,
    SimConfig,
    ddr4_paper_config,
    small_test_config,
)


class TestDRAMTiming:
    def test_ddr4_act_cycle_budget_is_54(self):
        assert DRAMTiming().act_cycle_budget == 54

    def test_ddr4_ref_cycle_budget_is_420(self):
        assert DRAMTiming().ref_cycle_budget == 420

    def test_ddr3_act_cycle_budget(self):
        # 45 ns at 320 MHz = 14 cycles
        assert DDR3_TIMING.act_cycle_budget == 14

    def test_ddr3_ref_cycle_budget(self):
        assert DDR3_TIMING.ref_cycle_budget == 112

    def test_max_acts_per_interval_near_165(self):
        # TWiCe derives 165 for DDR4; our derivation must agree closely
        assert DRAMTiming().max_acts_per_interval == 165

    def test_refresh_window_ns(self):
        assert DRAMTiming().refresh_window_ns == pytest.approx(64e6)

    def test_refresh_interval_ns(self):
        assert DRAMTiming().refresh_interval_ns == pytest.approx(7800)


class TestDRAMGeometry:
    def test_paper_refint_is_8192(self):
        assert DRAMGeometry().refint == 8192

    def test_refresh_interval_of_matches_shift(self):
        geometry = DRAMGeometry()
        assert geometry.refresh_interval_of(0) == 0
        assert geometry.refresh_interval_of(7) == 0
        assert geometry.refresh_interval_of(8) == 1
        assert geometry.refresh_interval_of(65_535) == 8191

    def test_rows_of_interval_inverse(self):
        geometry = DRAMGeometry()
        rows = geometry.rows_of_interval(3)
        assert list(rows) == [24, 25, 26, 27, 28, 29, 30, 31]
        for row in rows:
            assert geometry.refresh_interval_of(row) == 3

    def test_neighbors_interior(self):
        assert DRAMGeometry().neighbors(100) == (99, 101)

    def test_neighbors_edges(self):
        geometry = DRAMGeometry()
        assert geometry.neighbors(0) == (1,)
        last = geometry.rows_per_bank - 1
        assert geometry.neighbors(last) == (last - 1,)

    def test_row_bounds_checked(self):
        geometry = DRAMGeometry()
        with pytest.raises(ValueError):
            geometry.neighbors(-1)
        with pytest.raises(ValueError):
            geometry.refresh_interval_of(geometry.rows_per_bank)

    def test_interval_bounds_checked(self):
        with pytest.raises(ValueError):
            DRAMGeometry().rows_of_interval(8192)

    def test_rejects_misaligned_rows_per_interval(self):
        with pytest.raises(ValueError):
            DRAMGeometry(rows_per_bank=100, rows_per_interval=8)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            DRAMGeometry(num_banks=0)

    @given(
        interval=st.integers(min_value=0, max_value=63),
        offset=st.integers(min_value=0, max_value=7),
    )
    def test_mapping_roundtrip_property(self, interval, offset):
        geometry = DRAMGeometry(rows_per_bank=512, rows_per_interval=8)
        row = interval * 8 + offset
        assert geometry.refresh_interval_of(row) == interval
        assert row in geometry.rows_of_interval(interval)


class TestSimConfig:
    def test_paper_max_probability_near_0_001(self):
        config = ddr4_paper_config()
        # Table I: RefInt * Pbase = 9.8e-4
        assert config.max_probability == pytest.approx(9.8e-4, rel=0.01)

    def test_paper_pbase(self):
        assert ddr4_paper_config().pbase == PBASE_PAPER == 2.0 ** -23

    def test_flip_threshold_constants(self):
        assert FLIP_THRESHOLD == 139_000
        assert HALF_FLIP_THRESHOLD == 69_500

    def test_default_table_sizes_match_paper(self):
        config = ddr4_paper_config()
        assert config.history_table_entries == 32
        assert config.counter_table_entries == 64

    def test_rejects_bad_pbase(self):
        with pytest.raises(ValueError):
            SimConfig(pbase=0.0)
        with pytest.raises(ValueError):
            SimConfig(pbase=1.5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SimConfig(flip_threshold=0)

    def test_rejects_bad_table_sizes(self):
        with pytest.raises(ValueError):
            SimConfig(history_table_entries=0)
        with pytest.raises(ValueError):
            SimConfig(counter_table_entries=0)

    def test_scaled_replaces_fields(self):
        config = SimConfig().scaled(history_table_entries=16)
        assert config.history_table_entries == 16
        assert config.pbase == SimConfig().pbase

    def test_small_config_preserves_probability_bound(self):
        small = small_test_config()
        # RefInt * Pbase must keep the paper's ~0.001 ceiling
        assert small.max_probability == pytest.approx(
            2.0 ** -10, rel=1e-9
        )

    def test_small_config_scales_pbase_with_refint(self):
        for rows in (256, 512, 1024):
            small = small_test_config(rows_per_bank=rows)
            refint = small.geometry.refint
            assert small.pbase * refint == pytest.approx(2.0 ** -10)
            assert math.log2(small.pbase).is_integer()
