"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "fig4", "flood",
                        "policies", "trace", "run"):
            args = None
            try:
                if command in ("trace",):
                    args = parser.parse_args([command, "--out", "x"])
                elif command == "run":
                    args = parser.parse_args(
                        [command, "--technique", "PARA", "--trace", "x"]
                    )
                else:
                    args = parser.parse_args([command])
            except SystemExit:  # pragma: no cover
                pytest.fail(f"command {command} failed to parse")
            assert args.command == command


class TestStaticCommands:
    def test_table1_prints_parameters(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Refresh window" in out
        assert "8192" in out

    def test_table2_prints_cycles(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CaPRoMi" in out
        assert "258" in out


class TestTraceRoundtrip:
    def test_trace_then_run(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        assert main(["trace", "--out", trace_path, "--intervals", "8"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        code = main(["run", "--technique", "PARA", "--trace", trace_path])
        out = capsys.readouterr().out
        assert "PARA" in out
        assert code == 0  # 8 intervals cannot flip anything

    def test_run_unmitigated(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        main(["trace", "--out", trace_path, "--intervals", "8"])
        capsys.readouterr()
        code = main(["run", "--technique", "none", "--trace", trace_path])
        out = capsys.readouterr().out
        assert "none" in out
        assert code == 0


class TestHeavyCommands:
    """The simulation-backed subcommands, at minimal scale."""

    def test_table3_small(self, capsys):
        assert main(["table3", "--intervals", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "LoLiPRoMi" in out
        assert "unmitigated flips" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--intervals", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "table bytes/bank" in out

    def test_policies_small(self, capsys):
        assert main(["policies", "--intervals", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "counter-mask" in out

    def test_flood_small(self, capsys):
        assert main(["flood", "--start-weights", "4096", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "start weight" in out


class TestAdversary:
    """The red-team fuzzer subcommand, at smoke scale."""

    SMALL = ["adversary", "--technique", "lipromi", "--preset", "small",
             "--budget", "9", "--eval-seeds", "1"]

    def test_random_strategy_smoke(self, tmp_path, capsys):
        frontier_path = tmp_path / "frontier.json"
        code = main(self.SMALL + ["--strategy", "random",
                                  "--frontier-out", str(frontier_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "LiPRoMi" in out
        assert "acts to 1st mitigation" in out
        import json

        frontier = json.loads(frontier_path.read_text(encoding="utf-8"))
        assert frontier["technique"] == "LiPRoMi"
        assert frontier["points"]

    def test_evolve_beats_corpus(self, capsys):
        code = main(self.SMALL + ["--strategy", "evolve", "--budget", "21",
                                  "--eval-seeds", "2", "--pbase-exp", "12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "improvement" in out

    def test_checkpoint_and_resume_roundtrip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ck")
        argv = self.SMALL + ["--checkpoint-dir", ckpt]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_manifest_embeds_frontier(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "manifest.json"
        assert main(self.SMALL + ["--manifest", str(manifest_path)]) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        extra = manifest["extra"]
        assert extra["command"] == "adversary"
        assert extra["frontier"]["technique"] == "LiPRoMi"
        assert extra["frontier"]["points"]

    def test_unknown_technique_fails(self):
        with pytest.raises(ValueError, match="choose from"):
            main(["adversary", "--technique", "NoSuch", "--budget", "1",
                  "--preset", "small"])


class TestObservabilityCli:
    """--metrics-out exports and the campaign-status live modes."""

    CAMPAIGN = ["campaign", "--intervals", "8", "--seeds", "2",
                "--techniques", "PARA", "--workers", "0"]

    def run_campaign(self, tmp_path, *extra):
        ckpt = tmp_path / "ckpt"
        code = main(self.CAMPAIGN + ["--checkpoint-dir", str(ckpt)]
                    + list(extra))
        assert code == 0
        return ckpt

    def test_metrics_out_prometheus_round_trips(self, tmp_path, capsys):
        import json

        from repro.telemetry import registry_from_prometheus
        from repro.telemetry.export import parse_prometheus

        export = tmp_path / "metrics.prom"
        manifest = tmp_path / "manifest.json"
        self.run_campaign(tmp_path, "--metrics-out", str(export),
                          "--manifest", str(manifest))
        err = capsys.readouterr().err
        assert "wrote metrics export" in err
        text = export.read_text(encoding="utf-8")
        registry = registry_from_prometheus(text)
        assert registry.counters["campaign.shards_completed"].value == 2
        # span summary rode along: the campaign tree is in the export
        span_paths = parse_prometheus(text)["span_paths"]
        assert span_paths["campaign/shard"] == 2
        assert "campaign/shard/simulate" in span_paths
        # and the manifest records the export provenance
        extra = json.loads(manifest.read_text())["extra"]
        assert extra["metrics_export"] == {
            "path": str(export), "format": "prometheus",
        }

    def test_metrics_out_jsonl(self, tmp_path, capsys):
        from repro.telemetry.export import parse_jsonl

        export = tmp_path / "metrics.jsonl"
        self.run_campaign(tmp_path, "--metrics-out", str(export))
        capsys.readouterr()
        parsed = parse_jsonl(export.read_text(encoding="utf-8"))
        assert parsed["counters"]["campaign.shards_completed"]["value"] == 2
        assert parsed["span_paths"]["campaign"] == 1

    def test_campaign_status_once_emits_json_frame(self, tmp_path, capsys):
        import json

        ckpt = self.run_campaign(tmp_path)
        capsys.readouterr()
        assert main(["campaign-status", str(ckpt), "--once"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["snapshot"]["complete"] is True
        assert frame["snapshot"]["done"] == 2
        assert frame["store"] == {
            "completed": 2, "total": 2, "complete": True, "failures": 0,
        }
        assert [w["worker"] for w in frame["workers"]] == \
            ["PARA__s0", "PARA__s1"]
        assert all(w["phase"] == "done" for w in frame["workers"])
        assert frame["stale"] == []

    def test_campaign_status_follow_exits_on_complete(self, tmp_path,
                                                      capsys):
        import json

        ckpt = self.run_campaign(tmp_path)
        capsys.readouterr()
        assert main(["campaign-status", str(ckpt), "--follow",
                     "--json", "--interval", "0.01"]) == 0
        frames = [json.loads(line)
                  for line in capsys.readouterr().out.splitlines()]
        assert frames
        assert frames[-1]["snapshot"]["complete"] is True

    def test_campaign_status_once_before_campaign_exists(self, tmp_path,
                                                         capsys):
        import json

        assert main(["campaign-status", str(tmp_path / "nope"),
                     "--once"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["snapshot"] is None
        assert frame["store"] is None

    def test_plain_status_still_errors_without_checkpoint(self, capsys,
                                                          tmp_path):
        assert main(["campaign-status", str(tmp_path / "nope")]) == 2
        assert "no campaign checkpoint" in capsys.readouterr().err

    def test_adversary_metrics_out_records_generations(self, tmp_path,
                                                       capsys):
        from repro.telemetry.export import parse_jsonl

        export = tmp_path / "adversary.jsonl"
        code = main(["adversary", "--technique", "lipromi", "--preset",
                     "small", "--budget", "9", "--eval-seeds", "1",
                     "--metrics-out", str(export)])
        capsys.readouterr()
        assert code == 0
        parsed = parse_jsonl(export.read_text(encoding="utf-8"))
        assert parsed["span_paths"]["search"] == 1
        assert parsed["span_paths"].get("search/generation", 0) >= 1


class TestServeCli:
    def test_serve_and_submit_parse(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--shards", "3"])
        assert (args.command, args.shards, args.engine) == ("serve", 3, "fused")
        args = parser.parse_args([
            "submit", "trace.gz", "--port", "7777",
            "--techniques", "PARA", "none", "--seeds", "2",
            "--clock-ns", "45", "--summary-only",
        ])
        assert args.command == "submit"
        assert args.techniques == ["PARA", "none"]
        assert args.summary_only

    def test_submit_against_no_server_exits_3(self, tmp_path, capsys):
        trace = tmp_path / "t.trc"
        trace.write_text("0,ACT,0x0\n")
        # a bound-then-closed socket yields a port nothing listens on
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["submit", str(trace), "--port", str(port)]) == 3
        assert "connection" in capsys.readouterr().err

    def test_submit_missing_trace_file(self, tmp_path, capsys):
        code = main(["submit", str(tmp_path / "absent.trc"), "--port", "1"])
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestCampaignStatusPipe:
    def test_follow_json_survives_a_closed_pipe(self, tmp_path):
        """`campaign-status --follow --json | head -1` must exit clean.

        The downstream consumer closes the pipe after the first frame;
        the follow loop must treat the resulting BrokenPipeError as a
        normal stop -- no traceback, exit code 0 -- and every frame
        must be flushed as a complete line (head would hang forever on
        a block-buffered writer that never fills its buffer).
        """
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        proc = subprocess.run(
            [
                "bash", "-c",
                f"{sys.executable} -m repro campaign-status "
                f"{tmp_path} --follow --json --interval 0.05 | head -1",
            ],
            capture_output=True, text=True, timeout=60, env=env,
            cwd=repo_root,
        )
        assert proc.returncode == 0
        assert "Traceback" not in proc.stderr
        frame = json.loads(proc.stdout.strip())
        assert frame["snapshot"] is None  # empty dir: bus not written yet


class TestDistributedCli:
    """The queue executor lane and campaign-worker entry point."""

    CAMPAIGN = ["campaign", "--intervals", "8", "--seeds", "2",
                "--techniques", "PARA", "TWiCe", "--engine", "fast"]

    @staticmethod
    def canonical(ckpt):
        from repro.campaign import CampaignStore

        aggregates = CampaignStore(ckpt).partial_aggregates()
        return {
            name: [result.as_dict() for result in aggregate.results]
            for name, aggregate in aggregates.items()
        }

    def test_campaign_parses_executor_flags(self):
        parser = build_parser()
        args = parser.parse_args(self.CAMPAIGN + [
            "--checkpoint-dir", "ckpt",
            "--executor", "queue", "--queue-dir", "q",
            "--queue-workers", "2", "--lease-timeout", "5",
        ])
        assert args.executor == "queue"
        assert args.queue_dir == "q"
        assert args.queue_workers == 2
        assert args.lease_timeout == 5.0
        # executor lane names are validated at parse time
        with pytest.raises(SystemExit):
            parser.parse_args(self.CAMPAIGN + ["--checkpoint-dir", "ckpt",
                                               "--executor", "rdma"])

    def test_campaign_worker_parses(self):
        parser = build_parser()
        args = parser.parse_args([
            "campaign-worker", "qdir", "--poll-interval", "0.1",
            "--idle-exit", "3", "--max-shards", "7",
            "--lease-refresh", "0.5", "--quiet",
        ])
        assert args.command == "campaign-worker"
        assert args.queue_dir == "qdir"
        assert args.poll_interval == 0.1
        assert args.idle_exit == 3.0
        assert args.max_shards == 7
        assert args.lease_refresh == 0.5
        assert args.quiet

    def test_queue_campaign_matches_serial(self, tmp_path, capsys):
        """`--executor queue` with self-spawned workers lands the same
        bytes in the store as the serial lane, and the queue directory
        defaults to living under the checkpoint."""
        serial = tmp_path / "serial"
        code = main(self.CAMPAIGN + ["--workers", "0",
                                     "--checkpoint-dir", str(serial)])
        assert code == 0
        queued = tmp_path / "queued"
        code = main(self.CAMPAIGN + [
            "--executor", "queue", "--queue-workers", "2",
            "--lease-timeout", "30", "--checkpoint-dir", str(queued),
        ])
        capsys.readouterr()
        assert code == 0
        assert (queued / "queue" / "queue.json").is_file()
        assert self.canonical(queued) == self.canonical(serial)

    def test_queue_dir_flag_selects_queue_lane(self, tmp_path, capsys):
        """--queue-dir alone implies the queue executor; the campaign
        completes through it without --executor spelled out."""
        ckpt = tmp_path / "ckpt"
        code = main(self.CAMPAIGN + [
            "--queue-dir", str(tmp_path / "fabric"),
            "--queue-workers", "2", "--lease-timeout", "30",
            "--checkpoint-dir", str(ckpt),
        ])
        capsys.readouterr()
        assert code == 0
        assert (tmp_path / "fabric" / "queue.json").is_file()
        from repro.campaign import CampaignStore

        assert CampaignStore(ckpt).status().complete

    def test_status_frame_carries_incremental_aggregates(self, tmp_path,
                                                         capsys):
        import json

        ckpt = tmp_path / "ckpt"
        assert main(self.CAMPAIGN + ["--workers", "0",
                                     "--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["campaign-status", str(ckpt), "--once"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert set(frame["aggregates"]) == {"PARA", "TWiCe"}
        assert frame["aggregates"]["PARA"]["runs"] == 2
        # the human view folds the same partial aggregates in
        assert main(["campaign-status", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "PARA" in out and "TWiCe" in out
