"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "fig4", "flood",
                        "policies", "trace", "run"):
            args = None
            try:
                if command in ("trace",):
                    args = parser.parse_args([command, "--out", "x"])
                elif command == "run":
                    args = parser.parse_args(
                        [command, "--technique", "PARA", "--trace", "x"]
                    )
                else:
                    args = parser.parse_args([command])
            except SystemExit:  # pragma: no cover
                pytest.fail(f"command {command} failed to parse")
            assert args.command == command


class TestStaticCommands:
    def test_table1_prints_parameters(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Refresh window" in out
        assert "8192" in out

    def test_table2_prints_cycles(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CaPRoMi" in out
        assert "258" in out


class TestTraceRoundtrip:
    def test_trace_then_run(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        assert main(["trace", "--out", trace_path, "--intervals", "8"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        code = main(["run", "--technique", "PARA", "--trace", trace_path])
        out = capsys.readouterr().out
        assert "PARA" in out
        assert code == 0  # 8 intervals cannot flip anything

    def test_run_unmitigated(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        main(["trace", "--out", trace_path, "--intervals", "8"])
        capsys.readouterr()
        code = main(["run", "--technique", "none", "--trace", trace_path])
        out = capsys.readouterr().out
        assert "none" in out
        assert code == 0


class TestHeavyCommands:
    """The simulation-backed subcommands, at minimal scale."""

    def test_table3_small(self, capsys):
        assert main(["table3", "--intervals", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "LoLiPRoMi" in out
        assert "unmitigated flips" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--intervals", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "table bytes/bank" in out

    def test_policies_small(self, capsys):
        assert main(["policies", "--intervals", "16", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "counter-mask" in out

    def test_flood_small(self, capsys):
        assert main(["flood", "--start-weights", "4096", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "start weight" in out
