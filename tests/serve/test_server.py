"""Integration tests for the streaming evaluation service.

Every test runs a real :class:`ServeServer` on an ephemeral loopback
port with the server thread owning its own event loop -- the same
deployment shape as ``repro serve`` -- and drives it with the blocking
:class:`ServeClient` (or a raw socket where the test needs a client
that misbehaves on purpose).
"""

import gzip
import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.config import SimConfig
from repro.serve import (
    ServeClient,
    ServeDisconnected,
    ServeError,
    ServeServer,
    ServeSettings,
    encode_chunk,
    encode_frame,
)
from repro.sim.fused_engine import GridCell, run_simulation_grid
from repro.traces.ingest import ingest_trace

from tests.traces.ingest.test_streaming import FIXTURES

TRACE = FIXTURES / "mini_dramsim.trace.gz"
CLOCK_NS = 45.0


@contextmanager
def serving(tmp_path, **overrides):
    """A live server on a free port; kwargs override ServeSettings."""
    settings = ServeSettings(
        port=0,
        shards=2,
        ingest_cache=str(tmp_path / "ingest-cache"),
        **overrides,
    )
    server = ServeServer(settings=settings)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_started(30), "server did not start"
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(30)
        assert not thread.is_alive(), "server did not shut down"


def client_for(server, **kwargs):
    return ServeClient("127.0.0.1", server.port, timeout=60.0, **kwargs)


def offline_results(techniques, seeds, cache_root):
    """What an offline run of the same grid produces (ground truth)."""
    from repro.traces.ingest import IngestCache

    config = SimConfig()
    ingested = ingest_trace(
        TRACE, config, clock_ns=CLOCK_NS,
        cache=IngestCache(root=cache_root),
    )
    trace = ingested.trace.materialize()
    cells = [
        GridCell(technique=None if t == "none" else t, seed=s)
        for t in techniques
        for s in seeds
    ]
    return ingested, run_simulation_grid(config, trace, cells)


class TestRoundTrip:
    def test_verdicts_bit_identical_to_offline(self, tmp_path):
        techniques, seeds = ["PARA", "none", "LoLiPRoMi"], [0, 1]
        with serving(tmp_path) as server:
            outcome = client_for(server).submit(
                TRACE, techniques=techniques, seeds=seeds,
                clock_ns=CLOCK_NS, session="roundtrip",
            )
        ingested, expected = offline_results(
            techniques, seeds, tmp_path / "offline-cache"
        )
        assert [v["result"] for v in outcome.verdicts] == [
            r.as_dict() for r in expected
        ]
        # provenance digests match the offline ingest of the same file:
        # the server hashed exactly the bytes that travelled the wire
        assert (outcome.provenance["source_digest"]
                == ingested.provenance["source_digest"])
        assert (outcome.provenance["spec_digest"]
                == ingested.provenance["spec_digest"])

    def test_verdict_frames_carry_cell_identity(self, tmp_path):
        with serving(tmp_path) as server:
            outcome = client_for(server).submit(
                TRACE, techniques=["para"], seeds=[3], clock_ns=CLOCK_NS,
            )
        (verdict,) = outcome.verdicts
        assert verdict["technique"] == "PARA"  # canonicalised
        assert verdict["seed"] == 3
        assert verdict["index"] == 0
        assert outcome.done["cells"] == 1

    def test_second_session_hits_shared_ingest_cache(self, tmp_path):
        with serving(tmp_path) as server:
            client = client_for(server)
            first = client.submit(TRACE, clock_ns=CLOCK_NS)
            second = client.submit(TRACE, clock_ns=CLOCK_NS)
        assert not first.cache_hit
        assert second.cache_hit
        # hit or miss, the verdicts are value-identical
        assert first.results() == second.results()

    def test_concurrent_sessions_identical_verdicts(self, tmp_path):
        outcomes = {}
        errors = []

        def worker(label):
            try:
                outcomes[label] = client_for(server).submit(
                    TRACE, techniques=["PARA", "none"], seeds=[0],
                    clock_ns=CLOCK_NS, session=label,
                )
            except Exception as exc:  # surfaces in the main thread
                errors.append((label, exc))

        with serving(tmp_path) as server:
            threads = [
                threading.Thread(target=worker, args=(f"c{i}",))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
        assert not errors
        assert len(outcomes) == 3
        results = [outcomes[f"c{i}"].results() for i in range(3)]
        assert results[0] == results[1] == results[2]
        # sessions were spread across both shards round-robin
        shards = {o.accepted["shard"] for o in outcomes.values()}
        assert shards == {0, 1}


class TestValidation:
    def test_unknown_technique_rejected(self, tmp_path):
        with serving(tmp_path) as server:
            with pytest.raises(ServeError, match="bad-request") as excinfo:
                client_for(server).submit(TRACE, techniques=["NotATech"])
        assert excinfo.value.code == "bad-request"

    def test_unknown_format_rejected(self, tmp_path):
        with serving(tmp_path) as server:
            with pytest.raises(ServeError, match="format"):
                client_for(server).submit(TRACE, format="pcap")

    def test_truncated_gzip_upload_is_an_ingest_error(self, tmp_path):
        cut = tmp_path / "cut.trace.gz"
        cut.write_bytes(TRACE.read_bytes()[:100])
        with serving(tmp_path) as server:
            with pytest.raises(ServeError, match="truncated") as excinfo:
                client_for(server).submit(cut, clock_ns=CLOCK_NS)
        assert excinfo.value.code == "ingest"

    def test_server_survives_a_failed_session(self, tmp_path):
        with serving(tmp_path) as server:
            client = client_for(server)
            with pytest.raises(ServeError):
                client.submit(TRACE, techniques=["NotATech"])
            outcome = client.submit(TRACE, clock_ns=CLOCK_NS)
        assert len(outcome.verdicts) == 1


class TestDisconnect:
    def test_client_raises_serve_disconnected_on_dead_server(self):
        """A server that dies mid-handshake surfaces cleanly."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def accept_and_hang_up():
            conn, _ = listener.accept()
            conn.close()

        thread = threading.Thread(target=accept_and_hang_up, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServeDisconnected):
                ServeClient("127.0.0.1", port, timeout=10).submit(TRACE)
        finally:
            thread.join(10)
            listener.close()


class TestBackpressure:
    def test_large_grid_with_reading_client_is_not_shed(self, tmp_path):
        """A grid bigger than the outbound queue must *throttle* the
        worker, not shed a client that is reading as fast as it can:
        shedding is for clients that stopped, not clients that parse
        slower than the engine produces."""
        with serving(tmp_path, session_queue=8) as server:
            outcome = client_for(server).submit(
                TRACE, techniques=["PARA"], seeds=list(range(64)),
                clock_ns=CLOCK_NS, session="biggrid",
            )
            assert server.metrics.counters["serve.sessions_shed"].value == 0
        assert len(outcome.verdicts) == 64
        assert outcome.done["cells"] == 64

    def test_non_reading_client_is_shed(self, tmp_path):
        """A client that uploads but never reads fills its bounded
        queue, exhausts the stall grace, and is dropped -- not buffered
        without limit."""
        metrics_out = tmp_path / "serve.prom"
        with serving(
            tmp_path,
            session_queue=2,
            write_buffer_bytes=1024,
            so_sndbuf=4096,
            shed_grace_s=0.5,
            metrics_out=str(metrics_out),
        ) as server:
            sock = socket.socket()
            # tiny receive window: the kernel cannot absorb the verdict
            # stream on the client's behalf
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            sock.connect(("127.0.0.1", server.port))
            try:
                sock.sendall(encode_frame({
                    "type": "open",
                    "techniques": ["PARA"],
                    "seeds": list(range(512)),
                    "clock_ns": CLOCK_NS,
                    "session": "deadbeat",
                }))
                sock.sendall(encode_frame(encode_chunk(TRACE.read_bytes())))
                sock.sendall(encode_frame({"type": "end"}))
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if server.metrics.counters["serve.sessions_shed"].value:
                        break
                    time.sleep(0.05)
                shed = server.metrics.counters["serve.sessions_shed"].value
            finally:
                sock.close()
        assert shed == 1
        # the export (rewritten when the session finished) shows both
        # the shed counter and the queue-depth histogram
        text = metrics_out.read_text()
        assert 'repro_counter_total{name="serve.sessions_shed"} 1' in text
        assert 'name="serve.queue_depth"' in text

    def test_shed_metric_exported_at_zero(self, tmp_path):
        """The counter exists from the first export, not only after a
        shed -- dashboards must see an explicit zero."""
        metrics_out = tmp_path / "serve.prom"
        with serving(tmp_path, metrics_out=str(metrics_out)):
            pass
        text = metrics_out.read_text()
        assert 'repro_counter_total{name="serve.sessions_shed"} 0' in text


class TestObservability:
    def test_status_bus_and_metrics_export(self, tmp_path):
        status_dir = tmp_path / "service"
        metrics_out = tmp_path / "serve.prom"
        with serving(
            tmp_path,
            status_dir=str(status_dir),
            metrics_out=str(metrics_out),
        ) as server:
            client_for(server).submit(
                TRACE, clock_ns=CLOCK_NS, session="watched"
            )
            heartbeats = list((status_dir / "status" / "workers").glob("*.json"))
            assert len(heartbeats) == 1
            beat = json.loads(heartbeats[0].read_text())
            assert beat["phase"] == "done"
            assert beat["cells_done"] == beat["cells_total"] == 1
            live = json.loads(
                (status_dir / "status" / "campaign.json").read_text()
            )
            assert (live["done"], live["total"]) == (1, 1)
            assert live["complete"] is False  # server still running
        final = json.loads(
            (status_dir / "status" / "campaign.json").read_text()
        )
        assert final["complete"] is True
        text = metrics_out.read_text()
        assert 'name="serve.sessions_completed"} 1' in text
        # per-session engine metrics merged into the service registry
        assert "ingest." in text

    def test_campaign_status_follow_reads_a_live_server(self, tmp_path, capsys):
        from repro.cli import main

        status_dir = tmp_path / "service"
        with serving(tmp_path, status_dir=str(status_dir)) as server:
            client_for(server).submit(TRACE, clock_ns=CLOCK_NS, session="s")
            code = main([
                "campaign-status", str(status_dir), "--once", "--json",
            ])
        assert code == 0
        frame = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert frame["store"] is None  # no checkpoint store: bus only
        assert frame["snapshot"]["total"] == 1
        assert [w["worker"] for w in frame["workers"]] == ["session-s-0001"]
