"""Tests for the NDJSON wire protocol helpers."""

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_chunk,
    decode_frame,
    encode_chunk,
    encode_frame,
    error_frame,
)


class TestFrames:
    def test_round_trip(self):
        frame = {"type": "open", "techniques": ["PARA"], "clock_ns": 45.0}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encoding_is_canonical_one_line(self):
        data = encode_frame({"b": 1, "a": 2, "type": "x"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data) == {"a": 2, "b": 1, "type": "x"}
        # sorted keys: byte-stable across dict insertion orders
        assert data == encode_frame({"type": "x", "a": 2, "b": 1})

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "chunk", "data": "x" * MAX_FRAME_BYTES})

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2]\n",
        b'{"no-type": 1}\n',
        b'{"type": 7}\n',
    ])
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_frame(line)


class TestChunks:
    @pytest.mark.parametrize("payload", [b"", b"abc", bytes(range(256))])
    def test_round_trip(self, payload):
        assert decode_chunk(encode_chunk(payload)) == payload

    def test_non_base64_payload_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_chunk({"type": "chunk", "data": "!!not-base64!!"})

    def test_missing_payload_rejected(self):
        with pytest.raises(ProtocolError, match="data"):
            decode_chunk({"type": "chunk"})


class TestErrorFrames:
    def test_known_codes_build(self):
        for code in ERROR_CODES:
            frame = error_frame(code, "boom")
            assert frame == {"type": "error", "code": code, "message": "boom"}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_frame("nonsense", "boom")
