"""End-to-end ingest pipeline tests, including the PR acceptance check:
the bundled gzipped DRAMSim fixture replays bit-identically on both
engines, and a second ingest is served from the npz cache (observed via
telemetry counters).
"""

from pathlib import Path

import pytest

from repro.config import ddr4_paper_config
from repro.mitigations.registry import make_factory
from repro.telemetry.metrics import MetricsRegistry
from repro.traces.ingest import IngestCache, ingest_trace
from repro.traces.trace_io import TraceFormatError

from tests.harness import assert_engines_equivalent

CONFIG = ddr4_paper_config()
FIXTURES = Path(__file__).resolve().parents[2] / "fixtures" / "traces"


@pytest.fixture
def cache(tmp_path):
    return IngestCache(root=tmp_path / "cache", metrics=MetricsRegistry())


class TestFixtureIngest:
    def test_dramsim_fixture(self, cache):
        result = ingest_trace(
            FIXTURES / "mini_dramsim.trace.gz", CONFIG,
            clock_ns=45.0, cache=cache,
        )
        assert result.provenance["format"] == "dramsim"
        assert result.trace.count() == 240
        banks = {record.bank for record in result.trace.records}
        assert banks == {0, 1}
        assert not any(record.is_attack for record in result.trace.records)

    def test_litex_fixture(self, cache):
        result = ingest_trace(
            FIXTURES / "mini_payload.json", CONFIG, cache=cache
        )
        assert result.provenance["format"] == "litex"
        # 2 ACTs per loop body, JMP count=50 -> 100 activations
        assert result.trace.count() == 100
        assert all(record.is_attack for record in result.trace.records)
        assert {record.row for record in result.trace.records} == {7000, 7002}

    def test_native_fixture(self, cache):
        result = ingest_trace(
            FIXTURES / "mini_native.trace", CONFIG, cache=cache
        )
        assert result.provenance["format"] == "native"
        assert result.trace.count() == 60
        assert result.trace.meta.total_intervals == 2
        assert any(record.is_attack for record in result.trace.records)
        assert not all(record.is_attack for record in result.trace.records)


class TestAcceptance:
    """The ISSUE acceptance criterion, verbatim."""

    def test_gzipped_dramsim_replays_bit_identically_then_hits_cache(
        self, cache
    ):
        fixture = FIXTURES / "mini_dramsim.trace.gz"
        first = ingest_trace(fixture, CONFIG, clock_ns=45.0, cache=cache)
        # both engines replay the ingested trace field-for-field
        # identically (the harness compares every SimResult field)
        for technique in ("PARA", "LiPRoMi", None):
            factory = make_factory(technique) if technique else None
            assert_engines_equivalent(
                CONFIG, lambda: first.trace, factory, seed=0
            )
        # the second ingest is served from the npz cache, observed
        # through the telemetry counters
        second = ingest_trace(fixture, CONFIG, clock_ns=45.0, cache=cache)
        counters = cache.metrics.counters
        assert counters["ingest.cache_misses"].value == 1
        assert counters["ingest.cache_hits"].value == 1
        assert second.cache_hit
        # and the cached replay is value-identical to the cold one
        assert second.trace.records == first.trace.records
        assert second.trace.meta == first.trace.meta


class TestPipelineBehaviour:
    def test_missing_file_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ingest_trace(tmp_path / "nope.trc", CONFIG, use_cache=False)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("# only comments\n100,RD,0x0\n")
        with pytest.raises(TraceFormatError, match="no activation"):
            ingest_trace(path, CONFIG, use_cache=False)

    def test_explicit_format_overrides_detection(self, tmp_path):
        path = tmp_path / "t.json"  # json extension, dramsim content
        path.write_text(f"100,ACT,{5 << 15:#x}\n")
        result = ingest_trace(
            path, CONFIG, format="dramsim", use_cache=False
        )
        assert result.trace.count() == 1

    def test_skip_policy_records_provenance(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            "bogus\n"
            f"100,ACT,{5 << 15:#x}\n"
        )
        result = ingest_trace(
            path, CONFIG, on_parse_error="skip", use_cache=False
        )
        assert result.provenance["skipped"] == 1
        assert result.provenance["skipped_samples"]
        assert result.trace.count() == 1

    def test_records_sorted_by_time_bank_row(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            f"200,ACT,{6 << 15:#x}\n"
            f"100,ACT,{5 << 15:#x}\n"
        )
        result = ingest_trace(path, CONFIG, use_cache=False)
        times = [record.time_ns for record in result.trace.records]
        assert times == sorted(times)

    def test_mark_attacks_override_on_native(self, tmp_path, cache):
        fixture = FIXTURES / "mini_native.trace"
        flagged = ingest_trace(
            fixture, CONFIG, mark_attacks=True, cache=cache
        )
        assert all(record.is_attack for record in flagged.trace.records)

    def test_synthesized_meta_covers_last_record(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(f"100000,ACT,{5 << 15:#x}\n")
        result = ingest_trace(path, CONFIG, use_cache=False)
        meta = result.trace.meta
        assert meta.interval_ns == int(CONFIG.timing.refresh_interval_ns)
        assert meta.total_intervals * meta.interval_ns > 100000
        assert meta.num_banks == CONFIG.geometry.num_banks
