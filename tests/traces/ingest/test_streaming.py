"""Tests for the chunk-oriented streaming decoder.

Covers the serve-session arrival conditions the file-based readers
never see: chunk boundaries inside lines, inside multi-byte UTF-8
code points, inside gzip deflate blocks and *between* concatenated
gzip members -- plus truncation detection and equivalence with the
whole-file readers at every chunking.
"""

import gzip
from pathlib import Path

import pytest

from repro.config import ddr4_paper_config
from repro.traces.ingest import (
    ChunkDecoder,
    ParseErrorPolicy,
    StreamTruncated,
    dramsim_records,
    iter_chunk_lines,
    read_dramsim,
    resolve_mapper,
)
from repro.traces.trace_io import TraceFormatError

FIXTURES = Path(__file__).resolve().parents[2] / "fixtures" / "traces"
CONFIG = ddr4_paper_config()

TEXT = "alpha,1\nbeta,2\r\ngamma,3\nfinal-no-newline"
LINES = ["alpha,1", "beta,2", "gamma,3", "final-no-newline"]


def chunked(data: bytes, size: int):
    return [data[i:i + size] for i in range(0, len(data), size)]


def decode_all(chunks, **kwargs):
    return list(iter_chunk_lines(chunks, **kwargs))


class TestPlainText:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 100_000])
    def test_every_chunking_yields_identical_lines(self, size):
        data = TEXT.encode("utf-8")
        assert decode_all(chunked(data, size)) == LINES

    def test_torn_utf8_code_point_reassembled(self):
        # U+00E9 is two bytes; split the stream between them
        data = "café\nok\n".encode("utf-8")
        split = data.index(b"\xc3") + 1
        assert decode_all([data[:split], data[split:]]) == ["café", "ok"]

    def test_empty_chunks_are_harmless(self):
        data = TEXT.encode("utf-8")
        assert decode_all([b"", data[:4], b"", data[4:], b""]) == LINES

    def test_crlf_stripped_like_text_mode(self):
        assert decode_all([b"a\r\nb\r\n"]) == ["a", "b"]

    def test_stream_shorter_than_gzip_magic(self):
        # one byte total: the sniffer must not hold it forever
        assert decode_all([b"x"]) == ["x"]

    def test_undecodable_bytes_raise_with_line_number(self):
        decoder = ChunkDecoder(source="bad")
        with pytest.raises(TraceFormatError, match="bad"):
            decoder.feed(b"ok\n\xff\xfe\n")

    def test_counters_track_wire_bytes_and_lines(self):
        decoder = ChunkDecoder()
        decoder.feed(b"a\nb")
        decoder.feed(b"c\n")
        decoder.flush()
        assert decoder.bytes_seen == len(b"a\nbc\n")
        assert decoder.lines_seen == 2

    def test_feed_after_flush_rejected(self):
        decoder = ChunkDecoder()
        decoder.flush()
        with pytest.raises(ValueError, match="after flush"):
            decoder.feed(b"x")


class TestGzip:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 64, 100_000])
    def test_every_chunking_of_gzip_stream(self, size):
        data = gzip.compress(TEXT.encode("utf-8"))
        assert decode_all(chunked(data, size)) == LINES

    @pytest.mark.parametrize("size", [1, 2, 3, 7, 64, 100_000])
    def test_multi_member_archive_member_split_across_reads(self, size):
        # concatenated gzip members are a valid archive; chunking at
        # any size puts the member boundary inside or between feeds
        data = (
            gzip.compress(b"one\ntwo\n")
            + gzip.compress(b"three\n")
            + gzip.compress(b"four\nfive\n")
        )
        expected = ["one", "two", "three", "four", "five"]
        assert decode_all(chunked(data, size)) == expected

    def test_truncated_member_raises_on_flush(self):
        data = gzip.compress(TEXT.encode("utf-8"))
        decoder = ChunkDecoder(source="cut")
        decoder.feed(data[: len(data) // 2])
        with pytest.raises(StreamTruncated, match="truncated"):
            decoder.flush()

    def test_clean_single_member_does_not_false_positive(self):
        # a cleanly finished member must NOT look truncated at flush
        decoder = ChunkDecoder()
        lines = decoder.feed(gzip.compress(b"a\nb\n"))
        assert lines + decoder.flush() == ["a", "b"]

    def test_corrupt_gzip_raises(self):
        data = bytearray(gzip.compress(b"payload payload payload\n"))
        data[12] ^= 0xFF
        decoder = ChunkDecoder(source="corrupt")
        with pytest.raises(TraceFormatError, match="gzip"):
            decoder.feed(bytes(data))
            decoder.flush()

    def test_magic_split_across_first_two_chunks(self):
        data = gzip.compress(b"x\ny\n")
        assert decode_all([data[:1], data[1:]]) == ["x", "y"]


class TestReaderEquivalence:
    """Any chunking + line-based readers == whole-file readers."""

    @pytest.mark.parametrize("size", [1, 7, 64, 4096])
    def test_dramsim_fixture_records_identical(self, size):
        path = FIXTURES / "mini_dramsim.trace.gz"
        mapper = resolve_mapper("layout", CONFIG.geometry)
        expected = list(read_dramsim(
            path, mapper, CONFIG, ParseErrorPolicy(), clock_ns=45.0
        ))
        lines = iter_chunk_lines(
            chunked(path.read_bytes(), size), source=str(path)
        )
        streamed = list(dramsim_records(
            lines, str(path), mapper, CONFIG, ParseErrorPolicy(),
            clock_ns=45.0,
        ))
        assert streamed == expected
