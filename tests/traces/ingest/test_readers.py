"""Tests for the per-format streaming readers."""

import gzip
import json

import pytest

from repro.config import ddr4_paper_config, small_test_config
from repro.traces.ingest import (
    AddressMapper,
    ParseErrorPolicy,
    detect_format,
    open_trace_text,
    read_dramsim,
    read_litex,
    read_native,
)
from repro.traces.record import Trace, TraceMeta, TraceRecord
from repro.traces.trace_io import TraceFormatError, save_trace

CONFIG = ddr4_paper_config()
MAPPER = AddressMapper.from_layout(CONFIG.geometry)


def encode(row: int, bank: int, column: int = 0) -> int:
    return (row << 15) | (bank << 13) | column


class TestGzipTransparency:
    def test_plain_and_gzip_read_identically(self, tmp_path):
        text = "hello trace\nline two\n"
        plain = tmp_path / "t.txt"
        plain.write_text(text)
        zipped = tmp_path / "t.txt.gz"  # extension is NOT what's sniffed
        with gzip.open(zipped, "wt") as handle:
            handle.write(text)
        misleading = tmp_path / "t.trace"  # gzip bytes, no .gz extension
        misleading.write_bytes(zipped.read_bytes())
        for path in (plain, zipped, misleading):
            with open_trace_text(path) as handle:
                assert handle.read() == text


class TestDetectFormat:
    def test_detects_each_format(self, tmp_path):
        dramsim = tmp_path / "a.trc"
        dramsim.write_text("0,ACT,0x0\n")
        litex = tmp_path / "b.json"
        litex.write_text('{"rows": [1]}')
        native = tmp_path / "c.trace"
        save_trace(
            Trace(TraceMeta(1, 7800, 1), [TraceRecord(0, 0, 1)]), native
        )
        assert detect_format(dramsim) == "dramsim"
        assert detect_format(litex) == "litex"
        assert detect_format(native) == "native"

    def test_detects_through_gzip(self, tmp_path):
        path = tmp_path / "z"
        with gzip.open(path, "wt") as handle:
            handle.write('{"rows": [1]}')
        assert detect_format(path) == "litex"


class TestDramsimReader:
    def read(self, path, policy=None, **kwargs):
        policy = policy or ParseErrorPolicy()
        return list(read_dramsim(path, MAPPER, CONFIG, policy, **kwargs))

    def test_comma_and_whitespace_separators(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            f"100,ACT,{encode(5, 1):#x}\n"
            f"200 ACT {encode(6, 2):#x}\n"
        )
        records = self.read(path)
        assert records == [
            TraceRecord(100, 1, 5, False),
            TraceRecord(200, 2, 6, False),
        ]

    def test_non_act_commands_and_comments_ignored(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            "# a comment line\n"
            f"100,ACT,{encode(5, 1):#x}\n"
            f"150,RD,{encode(5, 1):#x}\n"
            f"160,PRE,{encode(5, 1):#x}\n"
            f"170,REF,0x0\n"
            "\n"
        )
        assert len(self.read(path)) == 1

    def test_clock_scaling(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(f"100,ACT,{encode(5, 1):#x}\n")
        assert self.read(path, clock_ns=0.83)[0].time_ns == 83

    def test_decimal_addresses(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(f"100,ACT,{encode(9, 3)}\n")
        assert self.read(path)[0] == TraceRecord(100, 3, 9, False)

    def test_mark_attacks(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(f"100,ACT,{encode(5, 1):#x}\n")
        assert self.read(path, mark_attacks=True)[0].is_attack

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(f"100,ACT,{encode(5, 1):#x}\nbogus\n")
        with pytest.raises(TraceFormatError) as excinfo:
            self.read(path)
        assert excinfo.value.line_no == 2
        assert str(path) in str(excinfo.value)

    def test_skip_policy_counts_and_samples(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            "bogus\n"
            f"100,ACT,{encode(5, 1):#x}\n"
            "x,ACT,0x0\n"
            "200,ACT,notanaddr\n"
        )
        policy = ParseErrorPolicy(mode="skip")
        records = self.read(path, policy=policy)
        assert len(records) == 1
        assert policy.skipped == 3
        assert len(policy.samples) == 3

    def test_out_of_geometry_address_is_a_parse_error(self, tmp_path):
        small = small_test_config()  # 1 bank x 512 rows
        # a mapper wider than the geometry can decode rows past the end
        mapper = AddressMapper("row:23-13 column:12-0")
        path = tmp_path / "t.trc"
        path.write_text(f"100,ACT,{600 << 13:#x}\n")  # row 600 > 512
        policy = ParseErrorPolicy(mode="skip")
        records = list(read_dramsim(path, mapper, small, policy))
        assert records == []
        assert policy.skipped == 1
        assert "geometry" in policy.samples[0]


class TestLitexRowSequence:
    def test_rows_replayed_with_iterations(self, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text(json.dumps(
            {"row_sequence": [7, 9], "bank": 2, "iterations": 3}
        ))
        records = list(read_litex(path, CONFIG, ParseErrorPolicy()))
        assert [record.row for record in records] == [7, 9] * 3
        assert all(record.bank == 2 for record in records)
        assert all(record.is_attack for record in records)
        # act-to-act spacing from the config timing
        step = records[1].time_ns - records[0].time_ns
        assert step == int(CONFIG.timing.act_to_act_ns)

    def test_rows_alias(self, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text(json.dumps({"rows": [1, 2, 3]}))
        assert len(list(read_litex(path, CONFIG, ParseErrorPolicy()))) == 3

    def test_bad_bank_raises(self, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text(json.dumps({"rows": [1], "bank": 99}))
        with pytest.raises(TraceFormatError, match="bank 99"):
            list(read_litex(path, CONFIG, ParseErrorPolicy()))


class TestLitexPayload:
    def payload(self, instrs, tick_ps=2500):
        return {"timing": {"tick_ps": tick_ps}, "instrs": instrs}

    def read(self, tmp_path, payload, policy=None):
        path = tmp_path / "p.json"
        path.write_text(json.dumps(payload))
        return list(read_litex(path, CONFIG, policy or ParseErrorPolicy()))

    def test_jmp_do_while_count_semantics(self, tmp_path):
        # the loop body has run once when JMP is reached, so count=N
        # executes the body N times total
        records = self.read(tmp_path, self.payload([
            {"op": "ACT", "timeslice": 18, "bank": 1, "addr": 50},
            {"op": "JMP", "offset": 1, "count": 4},
        ]))
        assert len(records) == 4

    def test_nested_body_time_advances(self, tmp_path):
        records = self.read(tmp_path, self.payload([
            {"op": "ACT", "timeslice": 10, "bank": 0, "addr": 1},
            {"op": "NOOP", "timeslice": 6},
            {"op": "ACT", "timeslice": 10, "bank": 0, "addr": 3},
            {"op": "JMP", "offset": 3, "count": 2},
        ], tick_ps=1000))
        # tick_ps=1000 -> 1 ns per timeslice unit
        assert [record.time_ns for record in records] == [0, 16, 26, 42]

    def test_rank_folds_into_flat_bank(self, tmp_path):
        records = self.read(tmp_path, self.payload([
            {"op": "ACT", "timeslice": 1, "rank": 0, "bank": 1, "addr": 5},
        ]))
        assert records[0].bank == 1

    def test_unknown_opcode_respects_policy(self, tmp_path):
        payload = self.payload([
            {"op": "FROB", "timeslice": 1},
            {"op": "ACT", "timeslice": 1, "bank": 0, "addr": 5},
        ])
        with pytest.raises(TraceFormatError, match="unknown opcode"):
            self.read(tmp_path, payload)
        policy = ParseErrorPolicy(mode="skip")
        assert len(self.read(tmp_path, payload, policy)) == 1
        assert policy.skipped == 1

    def test_jmp_offset_validation(self, tmp_path):
        with pytest.raises(TraceFormatError, match="offset"):
            self.read(tmp_path, self.payload([
                {"op": "ACT", "timeslice": 1, "bank": 0, "addr": 5},
                {"op": "JMP", "offset": 5, "count": 2},
            ]))

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text('{"instrs": [')
        with pytest.raises(TraceFormatError, match="malformed JSON"):
            list(read_litex(path, CONFIG, ParseErrorPolicy()))

    def test_neither_shape_raises(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text('{"something": 1}')
        with pytest.raises(TraceFormatError, match="instrs"):
            list(read_litex(path, CONFIG, ParseErrorPolicy()))


class TestNativeReader:
    def test_reads_meta_and_records(self, tmp_path):
        path = tmp_path / "n.trace"
        trace = Trace(
            TraceMeta(2, 7800, 4),
            [TraceRecord(0, 0, 1, False), TraceRecord(50, 1, 2, True)],
        )
        save_trace(trace, path)
        meta, records = read_native(path, ParseErrorPolicy())
        assert meta == trace.meta
        assert list(records) == trace.records

    def test_gzipped_native(self, tmp_path):
        plain = tmp_path / "n.trace"
        save_trace(
            Trace(TraceMeta(1, 7800, 1), [TraceRecord(0, 0, 1)]), plain
        )
        zipped = tmp_path / "n.trace.gz"
        with gzip.open(zipped, "wb") as handle:
            handle.write(plain.read_bytes())
        meta, records = read_native(zipped, ParseErrorPolicy())
        assert list(records) == [TraceRecord(0, 0, 1, False)]

    def test_skip_policy_on_bad_record(self, tmp_path):
        path = tmp_path / "n.trace"
        save_trace(
            Trace(TraceMeta(1, 7800, 1), [TraceRecord(0, 0, 1)]), path
        )
        with path.open("a") as handle:
            handle.write("bad,line\n")
        policy = ParseErrorPolicy(mode="skip")
        _, records = read_native(path, policy)
        assert len(list(records)) == 1
        assert policy.skipped == 1

    def test_bad_header_raises_immediately(self, tmp_path):
        path = tmp_path / "n.trace"
        path.write_text("#repro-trace:{broken\n")
        with pytest.raises(TraceFormatError, match="header"):
            read_native(path, ParseErrorPolicy())


class TestParseErrorPolicy:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="raise|skip"):
            ParseErrorPolicy(mode="ignore")

    def test_sample_limit(self, tmp_path):
        policy = ParseErrorPolicy(mode="skip", sample_limit=2)
        for index in range(5):
            policy.handle(TraceFormatError("x", f"err {index}", line_no=index))
        assert policy.skipped == 5
        assert len(policy.samples) == 2
