"""Tests for the digest-keyed ingest cache.

Covers the satellite checklist: digest stability across runs,
invalidation when the mapper spec changes, corrupted-entry recovery,
and gzip vs. plain-text byte-identical replay.
"""

import gzip

import pytest

from repro.config import ddr4_paper_config
from repro.telemetry.metrics import MetricsRegistry
from repro.traces.ingest import IngestCache, cache_key, file_digest, ingest_trace

CONFIG = ddr4_paper_config()


def write_dramsim(path, rows=(5, 6, 5, 7), bank=1, gzipped=False):
    lines = "".join(
        f"{index * 45},ACT,{(row << 15) | (bank << 13):#x}\n"
        for index, row in enumerate(rows)
    )
    if gzipped:
        with gzip.open(path, "wt") as handle:
            handle.write(lines)
    else:
        path.write_text(lines)
    return path


@pytest.fixture
def cache(tmp_path):
    return IngestCache(root=tmp_path / "cache", metrics=MetricsRegistry())


class TestDigests:
    def test_file_digest_stable_across_reads(self, tmp_path):
        path = write_dramsim(tmp_path / "t.trc")
        assert file_digest(path) == file_digest(path)

    def test_file_digest_tracks_content_not_name(self, tmp_path):
        a = write_dramsim(tmp_path / "a.trc")
        b = write_dramsim(tmp_path / "b.trc")
        c = write_dramsim(tmp_path / "c.trc", rows=(9, 9))
        assert file_digest(a) == file_digest(b)
        assert file_digest(a) != file_digest(c)

    def test_cache_key_deterministic(self):
        assert cache_key("s", "m") == cache_key("s", "m")
        assert cache_key("s", "m") != cache_key("s", "other")

    def test_ingest_key_stable_across_runs(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        first = ingest_trace(path, CONFIG, cache=cache)
        second = ingest_trace(path, CONFIG, cache=cache)
        assert (
            first.provenance["cache"]["key"]
            == second.provenance["cache"]["key"]
        )


class TestHitMiss:
    def test_second_ingest_is_a_hit_with_identical_records(
        self, tmp_path, cache
    ):
        path = write_dramsim(tmp_path / "t.trc")
        first = ingest_trace(path, CONFIG, cache=cache)
        second = ingest_trace(path, CONFIG, cache=cache)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.trace.records == first.trace.records
        assert second.trace.meta == first.trace.meta
        counters = cache.metrics.counters
        assert counters["ingest.cache_misses"].value == 1
        assert counters["ingest.cache_hits"].value == 1

    def test_use_cache_false_never_touches_cache(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        result = ingest_trace(path, CONFIG, cache=cache, use_cache=False)
        assert not result.cache_hit
        assert not result.provenance["cache"]["enabled"]
        assert not cache.metrics.counters

    def test_source_edit_invalidates(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        ingest_trace(path, CONFIG, cache=cache)
        write_dramsim(path, rows=(8, 8, 8))
        result = ingest_trace(path, CONFIG, cache=cache)
        assert not result.cache_hit
        assert result.trace.count() == 3


class TestMapperInvalidation:
    def test_mapper_spec_change_misses(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        ingest_trace(path, CONFIG, cache=cache)
        relaid = ingest_trace(
            path, CONFIG, cache=cache,
            mapper="row:30-15 bank:14-13 column:12-0 ",  # same, reformatted
        )
        assert relaid.cache_hit  # canonicalisation: whitespace is not a change
        moved = ingest_trace(
            path, CONFIG, cache=cache, mapper="row:28-13 column:12-0",
        )
        assert not moved.cache_hit
        assert moved.trace.records != relaid.trace.records

    def test_other_spec_knobs_invalidate(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        base = ingest_trace(path, CONFIG, cache=cache)
        assert not ingest_trace(
            path, CONFIG, cache=cache, clock_ns=2.0
        ).cache_hit
        assert not ingest_trace(
            path, CONFIG, cache=cache, mark_attacks=True
        ).cache_hit
        assert ingest_trace(path, CONFIG, cache=cache).cache_hit
        assert base.provenance["spec_digest"]


class TestCorruptionRecovery:
    def test_truncated_npz_reingests_and_heals(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        first = ingest_trace(path, CONFIG, cache=cache)
        key = first.provenance["cache"]["key"]
        cache.entry_path(key).write_bytes(b"not an npz")
        second = ingest_trace(path, CONFIG, cache=cache)
        assert not second.cache_hit
        assert second.trace.records == first.trace.records
        assert cache.metrics.counters["ingest.cache_evictions"].value == 1
        third = ingest_trace(path, CONFIG, cache=cache)
        assert third.cache_hit

    def test_missing_sidecar_is_a_miss(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        first = ingest_trace(path, CONFIG, cache=cache)
        key = first.provenance["cache"]["key"]
        (cache.root / f"{key}.json").unlink()
        assert not ingest_trace(path, CONFIG, cache=cache).cache_hit

    def test_mangled_sidecar_recovers(self, tmp_path, cache):
        path = write_dramsim(tmp_path / "t.trc")
        first = ingest_trace(path, CONFIG, cache=cache)
        key = first.provenance["cache"]["key"]
        (cache.root / f"{key}.json").write_text("{{{nope")
        second = ingest_trace(path, CONFIG, cache=cache)
        assert not second.cache_hit
        assert second.trace.records == first.trace.records


class TestGzipPlainEquivalence:
    def test_gzip_and_plain_replay_byte_identically(self, tmp_path, cache):
        plain = write_dramsim(tmp_path / "t.trc")
        zipped = write_dramsim(tmp_path / "t.trc.gz", gzipped=True)
        from_plain = ingest_trace(plain, CONFIG, cache=cache)
        from_gzip = ingest_trace(zipped, CONFIG, cache=cache)
        assert from_plain.trace.records == from_gzip.trace.records
        assert from_plain.trace.meta == from_gzip.trace.meta
        # different container bytes -> different cache entries, same replay
        assert (
            from_plain.provenance["source_digest"]
            != from_gzip.provenance["source_digest"]
        )
        assert (
            from_plain.provenance["spec_digest"]
            == from_gzip.provenance["spec_digest"]
        )
