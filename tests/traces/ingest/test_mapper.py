"""Tests for the address-mapper bit-field mini-language."""

import pytest

from repro.config import DRAMGeometry
from repro.cpu.layout import DRAMAddressLayout
from repro.traces.ingest import AddressMapper, layout_spec, resolve_mapper
from repro.traces.ingest.mapper import MapperSpecError


class TestSpecParsing:
    def test_basic_spec(self):
        mapper = AddressMapper("row:30-15 bank:14-13 column:12-0")
        decoded = mapper.decode((77 << 15) | (3 << 13) | 42)
        assert decoded.row == 77
        assert decoded.bank == 3
        assert decoded.column == 42
        assert decoded.channel == 0 and decoded.rank == 0

    def test_aliases(self):
        mapper = AddressMapper("ch:20 ra:19 ba:18-17 row:16-8 col:7-0")
        decoded = mapper.decode((1 << 20) | (1 << 19) | (2 << 17) | (5 << 8))
        assert decoded.channel == 1
        assert decoded.rank == 1
        assert decoded.bank == 2
        assert decoded.row == 5

    def test_multi_segment_field_concatenates_msb_first(self):
        # row = bits [10-9] then [3-2]: value 0b1101 -> segments 0b11, 0b01
        mapper = AddressMapper("row:10-9,3-2")
        address = (0b11 << 9) | (0b01 << 2)
        assert mapper.decode(address).row == 0b1101

    def test_single_bit_segment(self):
        mapper = AddressMapper("row:4-1 bank:0")
        assert mapper.decode(0b11011).bank == 1
        assert mapper.decode(0b11011).row == 0b1101

    def test_high_bits_above_spec_ignored(self):
        mapper = AddressMapper("row:3-0")
        assert mapper.decode(0xFF0 | 0x5).row == 5

    def test_canonical_spec_normalises_whitespace_and_order(self):
        a = AddressMapper("row:30-15   bank:14-13  column:12-0")
        b = AddressMapper("column:12-0 bank:14-13 row:30-15")
        assert a.canonical_spec == b.canonical_spec
        assert a.digest == b.digest

    def test_different_specs_different_digest(self):
        a = AddressMapper("row:30-15 bank:14-13")
        b = AddressMapper("row:30-15 bank:12-11")
        assert a.digest != b.digest


class TestSpecErrors:
    @pytest.mark.parametrize("spec", [
        "",
        "row",
        "rows:3-0",
        "row:x-0",
        "row:0-3",
        "row:-1-0",
        "bank:3-0",           # no row field
        "row:3-0 bank:2-1",   # overlapping bits
        "row:3-0 row:2",      # row overlaps itself
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(MapperSpecError):
            AddressMapper(spec)

    def test_error_names_overlapping_bit(self):
        with pytest.raises(MapperSpecError, match="bit 2"):
            AddressMapper("row:3-0 bank:2")

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            AddressMapper("row:3-0").decode(-1)


class TestLayoutPreset:
    def test_matches_cpu_layout_decode(self):
        geometry = DRAMGeometry()
        layout = DRAMAddressLayout(geometry)
        mapper = AddressMapper.from_layout(geometry)
        for address in (0, 8191, 8192, 123_456_789, (1 << 31) - 1):
            expected_bank, expected_row, expected_col = layout.decode(address)
            decoded = mapper.decode(address)
            assert mapper.flat_bank(decoded) == expected_bank
            assert decoded.row == expected_row
            assert decoded.column == expected_col

    def test_spec_string(self):
        assert layout_spec(DRAMGeometry()) == "row:30-15 bank:14-13 column:12-0"

    def test_shrunk_geometry(self):
        geometry = DRAMGeometry(num_banks=1, rows_per_bank=512)
        mapper = AddressMapper.from_layout(geometry)
        # 1 bank -> no bank bits; rows start right above the column bits
        assert mapper.decode(5 << 13).row == 5
        assert mapper.flat_bank(mapper.decode(5 << 13)) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(MapperSpecError, match="power-of-two"):
            layout_spec(DRAMGeometry(rows_per_bank=96, rows_per_interval=8))


class TestResolve:
    def test_layout_preset_uses_given_geometry(self):
        geometry = DRAMGeometry(num_banks=1, rows_per_bank=512)
        mapper = resolve_mapper("layout", geometry)
        assert mapper.decode(3 << 13).row == 3

    def test_literal_spec(self):
        mapper = resolve_mapper("row:7-4 bank:3-2", DRAMGeometry())
        assert mapper.decode(0b1011_0100).row == 0b1011

    def test_unknown_preset_lists_known(self):
        with pytest.raises(MapperSpecError, match="unknown mapper preset"):
            resolve_mapper("nope", DRAMGeometry())


class TestFlatBank:
    def test_channel_rank_bank_flattening(self):
        mapper = AddressMapper("ch:10 ra:9 ba:8-7 row:6-0")
        # channel-major, then rank, then bank
        decoded = mapper.decode((1 << 10) | (1 << 9) | (3 << 7))
        assert mapper.flat_bank(decoded) == ((1 * 2 + 1) * 4 + 3)
        assert mapper.flat_banks == 2 * 2 * 4
