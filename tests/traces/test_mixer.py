"""Tests for the workload/attack mixer."""

import pytest

from repro.config import small_test_config
from repro.traces.attacker import flooding
from repro.traces.mixer import build_trace, paper_mixed_workload
from repro.traces.record import validate_trace
from repro.traces.workload import WorkloadParams


class TestBuildTrace:
    def test_empty_when_no_sources(self):
        config = small_test_config()
        trace = build_trace(config, total_intervals=8).materialize()
        assert trace.count() == 0

    def test_pure_attack_counts(self):
        config = small_test_config()
        attack = flooding(config.geometry, 0, row=5, acts_per_interval=10)
        trace = build_trace(
            config, total_intervals=8, attacks=[attack]
        ).materialize()
        assert trace.count() == 80
        assert all(record.is_attack for record in trace)
        assert all(record.row == 5 for record in trace)

    def test_benign_records_not_flagged(self):
        config = small_test_config()
        trace = build_trace(
            config,
            total_intervals=8,
            benign_params=WorkloadParams(avg_acts_per_interval=10),
        ).materialize()
        assert trace.count() > 0
        assert not any(record.is_attack for record in trace)

    def test_per_interval_cap_enforced(self):
        config = small_test_config()
        cap = config.timing.max_acts_per_interval
        attack = flooding(config.geometry, 0, row=5, acts_per_interval=400)
        trace = build_trace(
            config, total_intervals=4, attacks=[attack]
        ).materialize()
        assert trace.count() == 4 * cap

    def test_trace_is_valid(self):
        config = small_test_config(num_banks=2)
        trace = build_trace(
            config,
            total_intervals=16,
            benign_params=WorkloadParams(avg_acts_per_interval=20),
            attacks=[flooding(config.geometry, 1, row=5, acts_per_interval=30)],
            seed=3,
        ).materialize()
        assert validate_trace(trace, act_to_act_ns=45) == []

    def test_deterministic_per_seed(self):
        config = small_test_config()
        make = lambda: build_trace(
            config,
            total_intervals=8,
            benign_params=WorkloadParams(avg_acts_per_interval=10),
            seed=11,
        ).materialize()
        assert list(make()) == list(make())

    def test_rejects_attack_on_missing_bank(self):
        config = small_test_config(num_banks=1)
        attack = flooding(config.geometry, 0, row=5, acts_per_interval=10)
        object.__setattr__(attack, "bank", 3)
        with pytest.raises(ValueError):
            build_trace(config, total_intervals=4, attacks=[attack])

    def test_records_sorted_within_interval_across_banks(self):
        config = small_test_config(num_banks=2)
        trace = build_trace(
            config,
            total_intervals=4,
            benign_params=WorkloadParams(avg_acts_per_interval=20),
            seed=5,
        ).materialize()
        times = [record.time_ns for record in trace]
        assert times == sorted(times)


class TestPaperMixedWorkload:
    def test_contains_both_flavours(self):
        config = small_test_config(num_banks=2)
        trace = paper_mixed_workload(
            config, total_intervals=config.geometry.refint, seed=0
        ).materialize()
        kinds = {record.is_attack for record in trace}
        assert kinds == {True, False}

    def test_attack_fraction_substantial_but_mixed(self):
        """The attacker shares the device with the benign load.

        (On the full 4-bank DDR4 geometry the attacker share lands near
        the ~38-60 % the paper's PARA FPR split implies; the 2-bank test
        geometry concentrates the attack, so the band here is loose.)
        """
        config = small_test_config(num_banks=2)
        trace = paper_mixed_workload(
            config, total_intervals=config.geometry.refint, seed=0
        ).materialize()
        attack = sum(1 for record in trace if record.is_attack)
        fraction = attack / trace.count()
        assert 0.25 < fraction < 0.85

    def test_aggressor_count_ramps(self):
        config = small_test_config(num_banks=1, rows_per_bank=2048)
        trace = paper_mixed_workload(
            config,
            total_intervals=200,
            seed=0,
            max_aggressors=10,
            sustained_double_sided=False,
        ).materialize()
        early = {
            record.row
            for record in trace
            if record.is_attack and record.time_ns < 10 * trace.meta.interval_ns
        }
        late = {
            record.row
            for record in trace
            if record.is_attack and record.time_ns > 190 * trace.meta.interval_ns
        }
        assert len(early) < len(late)

    def test_double_sided_attack_present_by_default(self):
        config = small_test_config(num_banks=2)
        trace = paper_mixed_workload(
            config, total_intervals=32, seed=0
        ).materialize()
        banks = {record.bank for record in trace if record.is_attack}
        assert banks == {0, 1}
