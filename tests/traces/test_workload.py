"""Tests for the synthetic benign workload generator."""

import pytest

from repro.config import DRAMGeometry
from repro.traces.workload import BenignWorkload, WorkloadParams


def geometry():
    return DRAMGeometry(num_banks=1, rows_per_bank=2048, rows_per_interval=8)


def make(seed=0, **kwargs):
    return BenignWorkload(geometry(), WorkloadParams(**kwargs), bank=0, seed=seed)


class TestWorkloadParams:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            WorkloadParams(avg_acts_per_interval=0)

    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            WorkloadParams(working_set_rows=0)

    def test_rejects_bad_turnover(self):
        with pytest.raises(ValueError):
            WorkloadParams(phase_turnover=2.0)


class TestRates:
    def test_mean_rate_close_to_parameter(self):
        workload = make(avg_acts_per_interval=25.0)
        counts = [workload.acts_in_interval(i) for i in range(2000)]
        mean = sum(counts) / len(counts)
        assert 23.0 < mean < 27.0  # Poisson(25), n=2000

    def test_counts_vary(self):
        workload = make(avg_acts_per_interval=25.0)
        counts = {workload.acts_in_interval(i) for i in range(100)}
        assert len(counts) > 3

    def test_deterministic_per_seed(self):
        rows_a = make(seed=5).rows_for_interval(0)
        rows_b = make(seed=5).rows_for_interval(0)
        assert rows_a == rows_b

    def test_seeds_differ(self):
        rows_a = [make(seed=1).next_row() for _ in range(20)]
        rows_b = [make(seed=2).next_row() for _ in range(20)]
        assert rows_a != rows_b


class TestLocality:
    def test_zipf_concentration(self):
        """Most activations hit a small top fraction of the working set."""
        workload = make(
            working_set_rows=256, zipf_s=1.2, streaming_burst_prob=0.0
        )
        from collections import Counter

        counts = Counter(workload.next_row() for _ in range(20_000))
        top32 = sum(count for _, count in counts.most_common(32))
        assert top32 / 20_000 > 0.6

    def test_rows_within_bank(self):
        workload = make()
        for _ in range(500):
            assert 0 <= workload.next_row() < 2048

    def test_phase_change_shifts_working_set(self):
        workload = make(
            phase_length_intervals=10,
            phase_turnover=1.0,
            streaming_burst_prob=0.0,
            working_set_rows=32,
        )
        before = set(workload.rows_for_interval(0))
        for interval in range(1, 30):
            workload.acts_in_interval(interval)
        after = set(workload.rows_for_interval(30))
        # full turnover twice: overlap should be far from total
        assert before != after

    def test_streaming_burst_produces_sequential_rows(self):
        workload = make(streaming_burst_prob=1.0, streaming_burst_length=8)
        rows = [workload.next_row() for _ in range(9)]
        # after the burst trigger, rows advance sequentially
        deltas = {b - a for a, b in zip(rows[1:], rows[2:])}
        assert deltas == {1} or 1 in deltas

    def test_working_set_capped_by_bank(self):
        small_geometry = DRAMGeometry(
            num_banks=1, rows_per_bank=64, rows_per_interval=8
        )
        workload = BenignWorkload(
            small_geometry,
            WorkloadParams(working_set_rows=10_000, streaming_burst_prob=0.0),
            bank=0,
            seed=0,
        )
        assert all(0 <= workload.next_row() < 64 for _ in range(200))
