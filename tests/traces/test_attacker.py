"""Tests for the attack pattern generators."""

import pytest

from repro.config import DRAMGeometry
from repro.traces.attacker import (
    AttackSpec,
    double_sided,
    flooding,
    n_aggressor,
    ramped_multi_aggressor,
    single_sided,
)


def geometry():
    return DRAMGeometry(num_banks=1, rows_per_bank=512, rows_per_interval=8)


class TestAttackSpec:
    def test_rejects_empty_aggressors(self):
        with pytest.raises(ValueError):
            AttackSpec(bank=0, aggressors=(), acts_per_interval=1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            AttackSpec(bank=0, aggressors=(1, 1), acts_per_interval=1)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            AttackSpec(bank=0, aggressors=(1,), acts_per_interval=0)

    def test_active_window(self):
        spec = AttackSpec(
            bank=0, aggressors=(1,), acts_per_interval=4,
            start_interval=2, end_interval=5,
        )
        assert not spec.active_in(1)
        assert spec.active_in(2)
        assert spec.active_in(4)
        assert not spec.active_in(5)

    def test_open_ended(self):
        spec = AttackSpec(bank=0, aggressors=(1,), acts_per_interval=4)
        assert spec.active_in(10 ** 6)

    def test_round_robin_is_fair(self):
        spec = AttackSpec(bank=0, aggressors=(1, 3, 5), acts_per_interval=9)
        rows = spec.rows_for_interval(0)
        assert len(rows) == 9
        assert rows.count(1) == rows.count(3) == rows.count(5) == 3

    def test_round_robin_rotates_across_intervals(self):
        spec = AttackSpec(bank=0, aggressors=(1, 3), acts_per_interval=3)
        first = spec.rows_for_interval(0)
        second = spec.rows_for_interval(1)
        assert first == [1, 3, 1]
        assert second == [3, 1, 3]

    def test_inactive_interval_empty(self):
        spec = AttackSpec(
            bank=0, aggressors=(1,), acts_per_interval=4, start_interval=10
        )
        assert spec.rows_for_interval(0) == []

    def test_victims_exclude_aggressors(self):
        spec = AttackSpec(bank=0, aggressors=(10, 12), acts_per_interval=1)
        assert spec.victims == (9, 11, 13)


class TestRowRangeValidation:
    """Regression: invalid rows/intervals fail at construction, not in
    the engine (pre-validation they surfaced only via build_trace)."""

    def test_rejects_negative_row(self):
        with pytest.raises(ValueError, match="negative"):
            AttackSpec(bank=0, aggressors=(-1,), acts_per_interval=1)

    def test_rejects_row_outside_bank(self):
        with pytest.raises(ValueError, match="outside"):
            AttackSpec(bank=0, aggressors=(512,), acts_per_interval=1,
                       rows_per_bank=512)

    def test_accepts_last_row_of_bank(self):
        spec = AttackSpec(bank=0, aggressors=(511,), acts_per_interval=1,
                          rows_per_bank=512)
        assert spec.aggressors == (511,)

    def test_unknown_bank_size_defers_range_check(self):
        # rows_per_bank=None keeps the historical behaviour: the range
        # check happens when build_trace sees the target geometry
        spec = AttackSpec(bank=0, aggressors=(10 ** 6,), acts_per_interval=1)
        assert spec.rows_per_bank is None

    def test_rejects_negative_start_interval(self):
        with pytest.raises(ValueError, match="start_interval"):
            AttackSpec(bank=0, aggressors=(1,), acts_per_interval=1,
                       start_interval=-1)

    def test_rejects_empty_interval_window(self):
        with pytest.raises(ValueError, match="end_interval"):
            AttackSpec(bank=0, aggressors=(1,), acts_per_interval=1,
                       start_interval=5, end_interval=5)

    def test_factories_stamp_bank_size(self):
        for spec in (
            single_sided(geometry(), 0, victim=100, acts_per_interval=8),
            double_sided(geometry(), 0, victim=100, acts_per_interval=8),
            flooding(geometry(), 0, row=7, acts_per_interval=8),
            n_aggressor(geometry(), 0, count=4, acts_per_interval=8,
                        first_row=10, spacing=4),
        ):
            assert spec.rows_per_bank == 512

    def test_flooding_rejects_row_outside_geometry(self):
        with pytest.raises(ValueError, match="outside"):
            flooding(geometry(), 0, row=512, acts_per_interval=8)


class TestPatternHelpers:
    def test_single_sided_targets_neighbor(self):
        spec = single_sided(geometry(), 0, victim=100, acts_per_interval=8)
        assert spec.aggressors == (101,)

    def test_single_sided_at_top_edge(self):
        spec = single_sided(geometry(), 0, victim=511, acts_per_interval=8)
        assert spec.aggressors == (510,)

    def test_double_sided_brackets_victim(self):
        spec = double_sided(geometry(), 0, victim=100, acts_per_interval=8)
        assert spec.aggressors == (99, 101)

    def test_double_sided_rejects_edge_victim(self):
        with pytest.raises(ValueError):
            double_sided(geometry(), 0, victim=0, acts_per_interval=8)

    def test_n_aggressor_spacing(self):
        spec = n_aggressor(
            geometry(), 0, count=4, acts_per_interval=8, first_row=10, spacing=4
        )
        assert spec.aggressors == (10, 14, 18, 22)

    def test_n_aggressor_rejects_overflow(self):
        with pytest.raises(ValueError):
            n_aggressor(geometry(), 0, count=200, acts_per_interval=8, spacing=4)

    def test_flooding_single_row(self):
        spec = flooding(geometry(), 0, row=7, acts_per_interval=165)
        assert spec.aggressors == (7,)
        assert spec.rows_for_interval(0) == [7] * 165


class TestRampedMultiAggressor:
    def test_segment_count(self):
        specs = ramped_multi_aggressor(
            geometry(), 0, total_intervals=100, max_aggressors=10,
            acts_per_interval=8, first_row=10, spacing=2,
        )
        assert len(specs) == 10

    def test_aggressors_are_cumulative(self):
        specs = ramped_multi_aggressor(
            geometry(), 0, total_intervals=100, max_aggressors=5,
            acts_per_interval=8, first_row=10, spacing=2,
        )
        for index, spec in enumerate(specs):
            assert len(spec.aggressors) == index + 1
            assert set(specs[index - 1].aggressors) <= set(spec.aggressors) or index == 0

    def test_segments_tile_the_trace(self):
        specs = ramped_multi_aggressor(
            geometry(), 0, total_intervals=100, max_aggressors=5,
            acts_per_interval=8, first_row=10, spacing=2,
        )
        covered = set()
        for spec in specs:
            covered.update(range(spec.start_interval, spec.end_interval))
        assert covered == set(range(100))

    def test_exactly_one_segment_active_per_interval(self):
        specs = ramped_multi_aggressor(
            geometry(), 0, total_intervals=97, max_aggressors=7,
            acts_per_interval=8, first_row=10, spacing=2,
        )
        for interval in range(97):
            active = [spec for spec in specs if spec.active_in(interval)]
            assert len(active) == 1

    def test_rejects_row_overflow(self):
        with pytest.raises(ValueError):
            ramped_multi_aggressor(
                geometry(), 0, total_intervals=100, max_aggressors=20,
                acts_per_interval=8, first_row=500, spacing=2,
            )
