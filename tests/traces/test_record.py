"""Tests for trace records, validation, and merging."""


from repro.traces.record import (
    Trace,
    TraceMeta,
    TraceRecord,
    merge_sorted,
    validate_trace,
)


def make_trace(records, intervals=4, interval_ns=7800, banks=2):
    meta = TraceMeta(
        total_intervals=intervals, interval_ns=interval_ns, num_banks=banks
    )
    return Trace(meta=meta, records=records)


class TestTrace:
    def test_meta_duration(self):
        meta = TraceMeta(total_intervals=4, interval_ns=7800, num_banks=1)
        assert meta.duration_ns == 31_200

    def test_materialize_from_generator(self):
        trace = make_trace(TraceRecord(i * 100, 0, i) for i in range(5))
        assert trace.count() == 5
        # second count re-reads the materialised list
        assert trace.count() == 5

    def test_aggressor_rows_grouped_by_bank(self):
        trace = make_trace(
            [
                TraceRecord(0, 0, 5, True),
                TraceRecord(100, 1, 7, True),
                TraceRecord(200, 0, 9, False),
            ]
        )
        rows = trace.aggressor_rows()
        assert rows == {0: {5}, 1: {7}}

    def test_iteration(self):
        records = [TraceRecord(0, 0, 1), TraceRecord(50, 1, 2)]
        trace = make_trace(records)
        assert list(trace) == records


class TestValidateTrace:
    def test_clean_trace_passes(self):
        trace = make_trace(
            [TraceRecord(0, 0, 1), TraceRecord(50, 1, 2), TraceRecord(100, 0, 3)]
        )
        assert validate_trace(trace) == []

    def test_detects_time_reversal(self):
        trace = make_trace([TraceRecord(100, 0, 1), TraceRecord(50, 0, 2)])
        problems = validate_trace(trace)
        assert any("backwards" in problem for problem in problems)

    def test_detects_act_to_act_violation(self):
        trace = make_trace([TraceRecord(0, 0, 1), TraceRecord(10, 0, 2)])
        problems = validate_trace(trace)
        assert any("act-to-act" in problem for problem in problems)

    def test_cross_bank_spacing_allowed(self):
        trace = make_trace([TraceRecord(0, 0, 1), TraceRecord(10, 1, 2)])
        assert validate_trace(trace) == []

    def test_detects_time_outside_span(self):
        trace = make_trace([TraceRecord(10 ** 9, 0, 1)])
        problems = validate_trace(trace)
        assert any("outside trace span" in problem for problem in problems)

    def test_detects_bad_bank(self):
        trace = make_trace([TraceRecord(0, 5, 1)])
        problems = validate_trace(trace)
        assert any("bank out of range" in problem for problem in problems)


class TestMergeSorted:
    def test_merges_by_time(self):
        a = [TraceRecord(0, 0, 1), TraceRecord(200, 0, 2)]
        b = [TraceRecord(100, 1, 3)]
        merged = list(merge_sorted([a, b]))
        assert [record.time_ns for record in merged] == [0, 100, 200]

    def test_empty_streams(self):
        assert list(merge_sorted([[], []])) == []
