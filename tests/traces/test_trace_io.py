"""Tests for trace serialisation."""

import pytest

from repro.config import small_test_config
from repro.traces.mixer import build_trace
from repro.traces.record import Trace, TraceMeta, TraceRecord
from repro.traces.trace_io import TraceFormatError, load_trace, save_trace
from repro.traces.workload import WorkloadParams


def sample_trace():
    meta = TraceMeta(total_intervals=4, interval_ns=7800, num_banks=2)
    records = [
        TraceRecord(0, 0, 10, False),
        TraceRecord(100, 1, 20, True),
        TraceRecord(7900, 0, 30, False),
    ]
    return Trace(meta=meta, records=records)


class TestRoundtrip:
    def test_save_returns_count(self, tmp_path):
        path = tmp_path / "trace.txt"
        assert save_trace(sample_trace(), path) == 3

    def test_roundtrip_preserves_everything(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.meta == original.meta
        assert list(loaded) == list(original)

    def test_lazy_load_streams(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(), path)
        loaded = load_trace(path, lazy=True)
        assert not isinstance(loaded.records, list)
        assert len(list(loaded)) == 3

    def test_generated_trace_roundtrip(self, tmp_path):
        config = small_test_config()
        trace = build_trace(
            config,
            total_intervals=8,
            benign_params=WorkloadParams(avg_acts_per_interval=10),
            seed=2,
        ).materialize()
        path = tmp_path / "gen.txt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert list(loaded) == list(trace)


class TestErrors:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_reports_bad_record_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(), path)
        with path.open("a") as handle:
            handle.write("bad,line\n")
        with pytest.raises(ValueError, match="bad record"):
            load_trace(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(), path)
        with path.open("a") as handle:
            handle.write("\n\n")
        assert load_trace(path).count() == 3


class TestTraceFormatError:
    """The typed error carries path + line number for precise reports."""

    def test_is_a_value_error(self):
        # pre-existing `except ValueError` call sites keep working
        assert issubclass(TraceFormatError, ValueError)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty file"):
            load_trace(path)

    def test_wrong_header_prefix_points_at_line_1(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        error = excinfo.value
        assert error.path == str(path)
        assert error.line_no == 1
        assert "not a repro trace" in error.reason
        assert f"{path}:1" in str(error)

    def test_malformed_header_json(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#repro-trace:{broken\n")
        with pytest.raises(TraceFormatError, match="malformed header JSON"):
            load_trace(path)

    def test_header_must_be_object(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#repro-trace:[1, 2]\n")
        with pytest.raises(TraceFormatError, match="JSON object"):
            load_trace(path)

    @pytest.mark.parametrize(
        "missing", ["total_intervals", "interval_ns", "num_banks"]
    )
    def test_header_missing_field_named(self, tmp_path, missing):
        import json

        header = {"total_intervals": 4, "interval_ns": 7800, "num_banks": 2}
        del header[missing]
        path = tmp_path / "trace.txt"
        path.write_text(f"#repro-trace:{json.dumps(header)}\n")
        with pytest.raises(TraceFormatError, match=missing):
            load_trace(path)

    @pytest.mark.parametrize("bad", ["0", "-3", '"four"', "null"])
    def test_header_field_must_be_positive_integer(self, tmp_path, bad):
        path = tmp_path / "trace.txt"
        path.write_text(
            '#repro-trace:{"total_intervals": ' + bad +
            ', "interval_ns": 7800, "num_banks": 2}\n'
        )
        with pytest.raises(TraceFormatError, match="total_intervals"):
            load_trace(path)

    def test_bad_record_carries_exact_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(), path)  # header + 3 records
        with path.open("a") as handle:
            handle.write("bad,line\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert excinfo.value.line_no == 5
        assert "bad record" in excinfo.value.reason

    def test_non_integer_record_field(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(), path)
        with path.open("a") as handle:
            handle.write("100,0,ten,0\n")
        with pytest.raises(TraceFormatError, match="integer fields"):
            load_trace(path)

    def test_lazy_load_raises_on_iteration(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(sample_trace(), path)
        with path.open("a") as handle:
            handle.write("bad,line\n")
        trace = load_trace(path, lazy=True)  # header is fine; no error yet
        with pytest.raises(TraceFormatError):
            list(trace)


class TestNpzRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        from repro.traces.trace_io import load_trace_npz, save_trace_npz

        path = tmp_path / "trace.npz"
        original = sample_trace()
        assert save_trace_npz(original, path) == 3
        loaded = load_trace_npz(path)
        assert loaded.meta == original.meta
        assert list(loaded) == list(original)

    def test_npz_smaller_than_text(self, tmp_path):
        from repro.traces.trace_io import save_trace_npz

        config = small_test_config()
        trace = build_trace(
            config,
            total_intervals=64,
            benign_params=WorkloadParams(avg_acts_per_interval=40),
            seed=2,
        ).materialize()
        text_path = tmp_path / "t.txt"
        npz_path = tmp_path / "t.npz"
        save_trace(trace, text_path)
        save_trace_npz(trace, npz_path)
        assert npz_path.stat().st_size < text_path.stat().st_size

    def test_generated_trace_roundtrip(self, tmp_path):
        from repro.traces.trace_io import load_trace_npz, save_trace_npz

        config = small_test_config()
        trace = build_trace(
            config,
            total_intervals=8,
            benign_params=WorkloadParams(avg_acts_per_interval=10),
            seed=3,
        ).materialize()
        path = tmp_path / "gen.npz"
        save_trace_npz(trace, path)
        assert list(load_trace_npz(path)) == list(trace)


class TestPurePythonNpzCodec:
    """The numpy-free npy/npz codec used on the CI no-numpy lane.

    The pure writer and reader are exercised directly here even when
    numpy is installed, plus cross-compatibility in both directions:
    an archive written by either codec must load through the other,
    because ingest caches and campaign spools travel between
    environments with and without numpy.
    """

    def generated(self):
        config = small_test_config()
        return build_trace(
            config,
            total_intervals=8,
            benign_params=WorkloadParams(avg_acts_per_interval=10),
            seed=3,
        ).materialize()

    def test_pure_roundtrip(self, tmp_path):
        from repro.traces.trace_io import _load_npz_pure, _save_npz_pure

        trace = self.generated()
        path = tmp_path / "pure.npz"
        _save_npz_pure(trace, path)
        loaded = _load_npz_pure(path)
        assert loaded.meta == trace.meta
        assert list(loaded) == list(trace)

    def test_pure_reader_loads_numpy_archives(self, tmp_path):
        pytest.importorskip("numpy", exc_type=ImportError)
        from repro.traces.trace_io import _load_npz_pure, save_trace_npz

        trace = self.generated()
        path = tmp_path / "np.npz"
        save_trace_npz(trace, path)  # numpy writer (numpy installed)
        loaded = _load_npz_pure(path)
        assert loaded.meta == trace.meta
        assert list(loaded) == list(trace)

    def test_numpy_reader_loads_pure_archives(self, tmp_path):
        np = pytest.importorskip("numpy", exc_type=ImportError)
        from repro.traces.trace_io import _save_npz_pure

        trace = self.generated()
        path = tmp_path / "pure.npz"
        _save_npz_pure(trace, path)
        with np.load(path) as data:
            assert data["times"].dtype == np.int64
            assert data["banks"].dtype == np.int16
            assert data["rows"].dtype == np.int32
            assert data["attacks"].dtype == np.bool_
            assert [int(v) for v in data["meta"]] == [
                trace.meta.total_intervals,
                trace.meta.interval_ns,
                trace.meta.num_banks,
            ]
            assert [int(t) for t in data["times"]] == \
                [r.time_ns for r in trace.records]

    def test_pure_reader_rejects_truncated_member(self, tmp_path):
        import zipfile

        from repro.traces.trace_io import (
            _load_npz_pure,
            _npy_bytes,
            _save_npz_pure,
        )

        trace = self.generated()
        path = tmp_path / "cut.npz"
        _save_npz_pure(trace, path)
        with zipfile.ZipFile(path) as archive:
            members = {
                name: archive.read(name) for name in archive.namelist()
            }
        members["times.npy"] = members["times.npy"][:-4]
        with zipfile.ZipFile(path, "w") as archive:
            for name, data in members.items():
                archive.writestr(name, data)
        with pytest.raises(TraceFormatError, match="truncated"):
            _load_npz_pure(path)
        # unsupported dtypes are named, not silently misread
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("times.npy", _npy_bytes([1], "<i8").replace(
                b"'<i8'", b"'<f8'", 1))
        with pytest.raises(TraceFormatError, match="dtype"):
            _load_npz_pure(path)

    def test_pure_reader_rejects_non_zip(self, tmp_path):
        from repro.traces.trace_io import _load_npz_pure

        path = tmp_path / "bogus.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(TraceFormatError, match="unreadable npz"):
            _load_npz_pure(path)
