"""Tests for the DDR4 command timing rules."""

import pytest

from repro.controller.timing_model import (
    BankTimer,
    CommandTimingChecker,
    DDR4CommandTiming,
    RankTimer,
)


def timing():
    return DDR4CommandTiming()


class TestParameters:
    def test_trc_matches_table1(self):
        """Table I: activate-to-activate = 45 ns."""
        assert timing().trc == pytest.approx(45.0)

    def test_trfc_matches_table1(self):
        assert timing().trfc == pytest.approx(350.0)

    def test_trefi_matches_table1(self):
        assert timing().trefi == pytest.approx(7800.0)


class TestBankTimer:
    def test_act_opens_row(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        assert bank.open_row == 7

    def test_act_on_open_bank_illegal(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        with pytest.raises(ValueError):
            bank.issue_act(100.0, 9)

    def test_pre_before_tras_illegal(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        assert not bank.can_pre(10.0)
        with pytest.raises(ValueError):
            bank.issue_pre(10.0)

    def test_pre_after_tras_legal(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        bank.issue_pre(31.0)
        assert bank.open_row == -1

    def test_act_to_act_respects_trc(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        bank.issue_pre(30.84)  # earliest legal PRE (tRAS)
        assert not bank.can_act(44.0)
        assert bank.can_act(45.0)  # tRAS + tRP = tRC = 45 ns

    def test_col_needs_trcd(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        assert not bank.can_col(10.0, 7)
        assert bank.can_col(14.2, 7)

    def test_col_to_wrong_row_illegal(self):
        bank = BankTimer(timing())
        bank.issue_act(0.0, 7)
        assert not bank.can_col(20.0, 8)

    def test_block_until_freezes(self):
        bank = BankTimer(timing())
        bank.block_until(500.0)
        assert not bank.can_act(400.0)
        assert bank.can_act(500.0)


class TestRankTimer:
    def test_trrd_between_acts(self):
        rank = RankTimer(timing())
        rank.issue_act(0.0)
        assert not rank.can_act(2.0)
        assert rank.can_act(3.3)

    def test_tfaw_window(self):
        rank = RankTimer(timing())
        for index in range(4):
            rank.issue_act(index * 4.0)  # acts at 0, 4, 8, 12
        # a fifth act must wait until the first leaves the 21.6 ns window
        assert not rank.can_act(16.0)
        assert rank.can_act(21.6)

    def test_illegal_act_raises(self):
        rank = RankTimer(timing())
        rank.issue_act(0.0)
        with pytest.raises(ValueError):
            rank.issue_act(1.0)


class TestChecker:
    def test_clean_stream(self):
        checker = CommandTimingChecker(num_banks=2)
        acts = [(0.0, 0), (50.0, 1), (100.0, 0), (160.0, 1)]
        assert checker.check(acts) == []

    def test_detects_trc_violation(self):
        checker = CommandTimingChecker(num_banks=2)
        problems = checker.check([(0.0, 0), (20.0, 0)])
        assert any("tRC" in problem for problem in problems)

    def test_detects_trrd_violation(self):
        checker = CommandTimingChecker(num_banks=4)
        problems = checker.check([(0.0, 0), (1.0, 1)])
        assert any("tRRD" in problem for problem in problems)

    def test_detects_tfaw_violation(self):
        checker = CommandTimingChecker(num_banks=8)
        acts = [(index * 4.0, index) for index in range(5)]  # 5 acts in 16 ns
        problems = checker.check(acts)
        assert any("tFAW" in problem for problem in problems)
