"""Tests for the FR-FCFS scheduler."""


from repro.config import SimConfig, small_test_config
from repro.controller.scheduler import DRAMRequestEvent, FRFCFSScheduler
from repro.controller.timing_model import CommandTimingChecker


def event(t, bank=0, row=5, write=False, attack=False):
    return DRAMRequestEvent(t, bank, row, write, attack)


class TestScheduling:
    def test_single_request_single_act(self):
        scheduler = FRFCFSScheduler(small_test_config())
        trace = scheduler.run([event(0.0)], total_intervals=1).materialize()
        assert trace.count() == 1
        assert trace.records[0].bank == 0
        assert trace.records[0].row == 5

    def test_row_hits_need_no_second_act(self):
        scheduler = FRFCFSScheduler(small_test_config())
        events = [event(0.0), event(100.0), event(200.0)]  # same row
        trace = scheduler.run(events, total_intervals=1).materialize()
        assert trace.count() == 1
        assert scheduler.row_hit_rate > 0.5

    def test_row_conflict_precharges_and_reactivates(self):
        scheduler = FRFCFSScheduler(small_test_config())
        events = [event(0.0, row=5), event(100.0, row=9)]
        trace = scheduler.run(events, total_intervals=1).materialize()
        assert [record.row for record in trace.records] == [5, 9]

    def test_banks_progress_in_parallel(self):
        scheduler = FRFCFSScheduler(small_test_config(num_banks=2))
        events = [event(0.0, bank=0, row=5), event(0.0, bank=1, row=7)]
        trace = scheduler.run(events, total_intervals=1).materialize()
        # both ACTs issue within one tRC: different banks, only tRRD apart
        times = sorted(record.time_ns for record in trace.records)
        assert trace.count() == 2
        assert times[1] - times[0] < 45

    def test_attack_tag_propagates(self):
        scheduler = FRFCFSScheduler(small_test_config())
        trace = scheduler.run(
            [event(0.0, attack=True)], total_intervals=1
        ).materialize()
        assert trace.records[0].is_attack

    def test_output_is_timing_legal(self):
        config = small_test_config(num_banks=2)
        scheduler = FRFCFSScheduler(config)
        events = []
        for index in range(300):
            events.append(
                event(index * 20.0, bank=index % 2, row=(index * 7) % 64)
            )
        trace = scheduler.run(events, total_intervals=2).materialize()
        checker = CommandTimingChecker(num_banks=2)
        assert checker.check(
            [(record.time_ns, record.bank) for record in trace.records]
        ) == []

    def test_hammering_throughput_bounded_by_trc(self):
        """Alternating-row hammering of one bank can never exceed one
        activation per tRC -- the physical limit the 165/interval cap
        comes from."""
        config = small_test_config()
        scheduler = FRFCFSScheduler(config, queue_depth=512)
        events = [
            event(index * 10.0, row=5 if index % 2 else 7)
            for index in range(400)
        ]
        trace = scheduler.run(events, total_intervals=1).materialize()
        interval_ns = config.timing.refresh_interval_ns
        assert trace.count() <= interval_ns / 45.0 + 1

    def test_backpressure_counted(self):
        scheduler = FRFCFSScheduler(small_test_config(), queue_depth=4)
        events = [event(0.0, row=index) for index in range(50)]
        scheduler.run(events, total_intervals=1)
        assert scheduler.backpressured > 0


class TestRefresh:
    def test_refresh_blocks_activations(self):
        """No ACT may issue during the 350 ns tRFC after a refresh."""
        scheduler = FRFCFSScheduler(small_test_config())
        # request arrives during the refresh at t=0
        trace = scheduler.run([event(10.0)], total_intervals=1).materialize()
        assert trace.records[0].time_ns >= 350

    def test_refresh_closes_open_rows(self):
        config = small_test_config()
        scheduler = FRFCFSScheduler(config)
        trefi = scheduler.timing.trefi
        events = [
            event(400.0, row=5),
            event(trefi + 400.0, row=5),  # same row, next interval
        ]
        trace = scheduler.run(events, total_intervals=2).materialize()
        # the refresh between them closed the row: two ACTs, not one
        assert trace.count() == 2


class TestSystemIntegration:
    def test_scheduled_system_trace_feeds_engine(self):
        from repro.controller.scheduler import schedule_system_trace
        from repro.cpu import (
            DRAMAddressLayout,
            HammerKernel,
            MultiCoreSystem,
            pick_aggressor_rows,
            spec_mixed_load,
        )
        from repro.mitigations import make_factory
        from repro.sim.engine import run_simulation

        config = SimConfig()
        layout = DRAMAddressLayout(config.geometry)
        workloads = spec_mixed_load(region_size_per_core=1 << 21, seed=1)
        kernel = HammerKernel(
            layout, bank=0,
            aggressor_rows=pick_aggressor_rows(layout, 30_000, sided=2),
        )
        system = MultiCoreSystem(config, workloads, attacker=kernel)
        trace = schedule_system_trace(system, total_intervals=4).materialize()
        assert trace.count() > 0
        checker = CommandTimingChecker(config.geometry.num_banks)
        assert checker.check(
            [(r.time_ns, r.bank) for r in trace.records]
        ) == []
        result = run_simulation(config, trace, make_factory("LoLiPRoMi"))
        assert result.normal_activations == trace.count()


class TestSchedulerProperties:
    """Property-based checks: any request stream yields a legal trace."""

    from hypothesis import given, settings, strategies as st

    @given(
        events=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=15_000, allow_nan=False),
                st.integers(min_value=0, max_value=1),   # bank
                st.integers(min_value=0, max_value=63),  # row
                st.booleans(),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_any_stream_schedules_legally(self, events):
        config = small_test_config(num_banks=2)
        scheduler = FRFCFSScheduler(config, queue_depth=64)
        stream = [
            DRAMRequestEvent(t, bank, row, write, False)
            for t, bank, row, write in events
        ]
        trace = scheduler.run(stream, total_intervals=3).materialize()
        checker = CommandTimingChecker(num_banks=2)
        assert checker.check(
            [(record.time_ns, record.bank) for record in trace.records]
        ) == []
        # conservation: every request is served, backpressured, or an
        # activation-free row hit; ACT count can never exceed requests
        assert trace.count() <= len(stream)

    @given(seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=10, deadline=None)
    def test_burst_to_one_bank_is_serialised(self, seed):
        import random as _random

        config = small_test_config()
        scheduler = FRFCFSScheduler(config, queue_depth=256)
        rng = _random.Random(seed)
        stream = [
            DRAMRequestEvent(0.0, 0, rng.randrange(64), False, False)
            for _ in range(64)
        ]
        trace = scheduler.run(stream, total_intervals=2).materialize()
        times = [record.time_ns for record in trace.records]
        # consecutive ACTs to one bank are at least tRC apart
        for first, second in zip(times, times[1:]):
            assert second - first >= 44  # 45 ns minus int truncation
