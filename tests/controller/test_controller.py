"""Tests for the memory controller and RH interrupt buffering."""


from repro.config import small_test_config
from repro.controller.controller import MemoryController
from repro.mitigations.base import ActivateNeighbors, Mitigation, RefreshRow
from repro.mitigations.registry import make_factory


class ScriptedMitigation(Mitigation):
    """Returns pre-programmed actions; used to probe the controller."""

    name = "scripted"

    def __init__(self, config, bank=0, actions=()):
        super().__init__(config, bank)
        self.actions = list(actions)
        self.seen = []

    def on_activation(self, row, interval):
        self.seen.append(("act", row, interval))
        return self.actions.pop(0) if self.actions else ()

    def on_refresh(self, interval):
        self.seen.append(("ref", interval))
        return ()

    @property
    def table_bytes(self):
        return 0


def scripted_controller(actions, config=None):
    config = config or small_test_config()
    holder = {}

    def factory(cfg, bank, seed):
        holder[bank] = ScriptedMitigation(cfg, bank, actions)
        return holder[bank]

    controller = MemoryController(config=config, mitigation_factory=factory)
    return controller, holder[0]


class TestCommandFlow:
    def test_activation_reaches_mitigation_with_interval(self):
        controller, mitigation = scripted_controller([])
        controller.refresh_tick()
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=100)
        assert ("act", 10, 1) in mitigation.seen

    def test_refresh_reaches_mitigation(self):
        controller, mitigation = scripted_controller([])
        controller.refresh_tick()
        assert ("ref", 0) in mitigation.seen

    def test_unmitigated_controller_works(self):
        controller = MemoryController(config=small_test_config())
        controller.refresh_tick()
        assert controller.activate(0, 10, time_ns=0) == 0
        assert controller.extra_activations == 0


class TestActionApplication:
    def test_act_n_costs_two_extras(self):
        controller, _ = scripted_controller([(ActivateNeighbors(row=10),)])
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0)
        controller.finish()
        assert controller.extra_activations == 2
        assert controller.mitigation_triggers == 1

    def test_act_n_at_edge_costs_one(self):
        controller, _ = scripted_controller([(ActivateNeighbors(row=0),)])
        controller.refresh_tick()
        controller.activate(0, 0, time_ns=0)
        controller.finish()
        assert controller.extra_activations == 1

    def test_refresh_row_costs_one_and_restores_victim(self):
        controller, _ = scripted_controller(
            [(), (RefreshRow(row=11, trigger_row=10),)]
        )
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0)   # disturbs 11
        controller.activate(0, 10, time_ns=50)  # triggers refresh of 11
        controller.finish()
        assert controller.extra_activations == 1
        bank = controller.device.banks[0]
        assert bank.disturbance.disturbance(11) == 0
        # normal activation count must not include the extra refresh
        assert bank.activations == 2

    def test_act_n_restores_both_victims(self):
        controller, _ = scripted_controller([(), (ActivateNeighbors(row=10),)])
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0)
        controller.activate(0, 10, time_ns=50)
        controller.finish()
        bank = controller.device.banks[0]
        assert bank.disturbance.disturbance(9) == 0
        assert bank.disturbance.disturbance(11) == 0


class TestFalsePositiveAttribution:
    def test_attack_trigger_is_true_positive(self):
        controller, _ = scripted_controller([(ActivateNeighbors(row=10),)])
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0, is_attack=True)
        controller.finish()
        assert controller.fp_extra_activations == 0

    def test_benign_trigger_is_false_positive(self):
        controller, _ = scripted_controller([(ActivateNeighbors(row=10),)])
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0, is_attack=False)
        controller.finish()
        assert controller.fp_extra_activations == 2

    def test_attribution_uses_trigger_row_not_target(self):
        # victim 11 refreshed because aggressor 10 (attack) activated
        controller, _ = scripted_controller(
            [(RefreshRow(row=11, trigger_row=10),)]
        )
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0, is_attack=True)
        controller.finish()
        assert controller.fp_extra_activations == 0

    def test_aggressor_set_accumulates(self):
        controller, _ = scripted_controller(
            [(), (ActivateNeighbors(row=10),)]
        )
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0, is_attack=True)
        controller.activate(0, 10, time_ns=50, is_attack=False)
        controller.finish()
        # row 10 became a known aggressor on its first activation
        assert controller.fp_extra_activations == 0


class TestBuffer:
    def test_buffer_occupancy_tracked(self):
        controller, _ = scripted_controller(
            [(ActivateNeighbors(row=10), ActivateNeighbors(row=20))]
        )
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0)
        controller.finish()
        assert controller.max_buffer_occupancy == 2

    def test_buffer_drained_before_next_command(self):
        controller, _ = scripted_controller([(ActivateNeighbors(row=10),)])
        controller.refresh_tick()
        controller.activate(0, 10, time_ns=0)
        controller.activate(0, 20, time_ns=50)
        assert len(controller._rh_buffer) == 0


class TestMultiBank:
    def test_per_bank_mitigation_instances(self):
        config = small_test_config(num_banks=2)
        controller = MemoryController(
            config=config, mitigation_factory=make_factory("PARA")
        )
        assert len(controller.mitigations) == 2
        assert controller.mitigations[0] is not controller.mitigations[1]
        assert controller.mitigations[0].bank == 0
        assert controller.mitigations[1].bank == 1
