"""Tests for the ASCII report renderers."""

from repro.analysis.report import (
    render_comparison,
    render_fig4,
    render_flooding,
    render_table,
    render_table1,
    render_table2,
    render_table3,
)
from repro.config import SimConfig
from repro.sim.attacks import FloodingOutcome
from repro.sim.experiment import TechniqueAggregate
from repro.sim.metrics import SimResult


def aggregate(name="PARA", extra=10):
    agg = TechniqueAggregate(technique=name)
    agg.results.append(
        SimResult(
            technique=name,
            seed=0,
            normal_activations=10_000,
            extra_activations=extra,
            fp_extra_activations=extra // 2,
            table_bytes=32,
            flip_threshold=1000,
        )
    )
    return agg


class TestRenderTable:
    def test_aligned_columns(self):
        text = render_table(("a", "bbb"), [("xxxx", "y")])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].index("bbb") == lines[2].index("y")

    def test_header_separator(self):
        text = render_table(("col",), [("v",)])
        assert "---" in text.splitlines()[1]


class TestPaperTables:
    def test_table1_lists_key_parameters(self):
        text = render_table1(SimConfig())
        assert "64.0 ms" in text
        assert "7.8 us" in text
        assert "8192" in text
        assert "139000" in text
        assert "2^-23" in text

    def test_table2_contains_paper_cycles(self):
        text = render_table2(SimConfig())
        assert "50" in text and "258" in text
        assert "ok" in text

    def test_table3_has_all_nine_rows(self):
        comparison = {"PARA": aggregate("PARA")}
        text = render_table3(SimConfig(), comparison)
        for name in ("PARA", "ProHit", "MRLoc", "TWiCe", "CRA",
                     "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
            assert name in text
        assert "(1.0x)" in text  # PARA is its own reference
        assert "n/a" in text     # techniques without measurements

    def test_table3_vulnerability_column(self):
        text = render_table3(SimConfig(), {})
        li_row = next(line for line in text.splitlines() if line.startswith("LiPRoMi"))
        assert "Yes" in li_row
        lo_row = next(line for line in text.splitlines() if line.startswith("LoPRoMi"))
        assert "No" in lo_row

    def test_table3_vulnerable_column_pinned(self):
        """Regression: the rendered vulnerable column, paper + modern rows."""
        from repro.analysis.area import table3_resources

        expected = {
            "ProHit": "Yes",     # Loaded Dice non-selection
            "MRLoc": "Yes",
            "PARA": "Yes",
            "TWiCe": "No",
            "CRA": "No",
            "CaPRoMi": "No",
            "LiPRoMi": "Yes",
            "LoPRoMi": "No",
            "LoLiPRoMi": "No",
            "LoadedDice": "No",
            "RVC": "Yes",        # victim-table eviction thrash
            "PVAC": "No",
            "PRAC": "Yes",       # ALERT wave attack
            "PRACtical": "No",
            "ProbTracker": "Yes",  # insertion lottery
        }
        config = SimConfig()
        text = render_table3(
            config, {}, table3_resources(config, include_modern=True)
        )
        for name, verdict in expected.items():
            row = next(
                line for line in text.splitlines()
                if line.startswith(name + " ")
            )
            cells = row.split()
            assert verdict in cells, f"{name}: expected {verdict} in {row!r}"
            other = "No" if verdict == "Yes" else "Yes"
            assert other not in cells, f"{name}: ambiguous row {row!r}"

    def test_render_techniques_lists_tiers_and_traits(self):
        from repro.analysis.report import render_techniques

        text = render_techniques(SimConfig())
        for name in ("PARA", "CounterTree", "LoadedDice", "RVC", "PVAC",
                     "PRAC", "PRACtical", "ProbTracker"):
            assert name in text
        para_row = next(
            line for line in text.splitlines() if line.startswith("PARA ")
        )
        assert "paper" in para_row
        prac_row = next(
            line for line in text.splitlines() if line.startswith("PRAC ")
        )
        assert "modern" in prac_row

        paper_only = render_techniques(
            SimConfig(), include_extended=False, include_modern=False
        )
        assert "LoadedDice" not in paper_only
        assert "CounterTree" not in paper_only
        assert "PARA" in paper_only

    def test_table3_reports_discovered_worst_case(self):
        from repro.adversary import AdversaryFrontier, FrontierPoint

        frontier = AdversaryFrontier("LiPRoMi")
        frontier.update([FrontierPoint(
            genome={}, name="mut:align_phase.deadbeef",
            acts_per_window=5280, fitness=1411.0, escape_rate=0.0,
            generation=4,
        )])
        text = render_table3(SimConfig(), {}, frontiers={"LiPRoMi": frontier})
        assert "worst discovered pattern" in text
        assert "mut:align_phase.deadbeef" in text

    def test_render_adversary_reports_search(self):
        from repro.adversary import SearchSettings, run_search
        from repro.analysis.report import render_adversary
        from repro.config import small_test_config

        outcome = run_search(
            small_test_config(),
            SearchSettings(technique="LiPRoMi", strategy="random",
                           budget=5, eval_seeds=1, windows=1),
        )
        text = render_adversary(outcome)
        assert "LiPRoMi" in text
        assert "acts to 1st mitigation" in text
        assert "improvement" in text


class TestFigAndExperimentRenderers:
    def test_fig4_table_and_scatter(self):
        points = [
            {"technique": "PARA", "table_bytes": 1.0, "overhead_pct": 0.1},
            {"technique": "TWiCe", "table_bytes": 3000.0, "overhead_pct": 0.004},
        ]
        text = render_fig4(points)
        assert "PARA" in text
        assert "table bytes/bank (log)" in text

    def test_flooding_render(self):
        outcome = FloodingOutcome("LiPRoMi", 0, 165)
        outcome.acts_to_first_trigger = [40_000, 42_000, 39_000]
        text = render_flooding([outcome])
        assert "LiPRoMi" in text
        assert "40,000" in text
        assert "yes" in text

    def test_flooding_render_no_trigger(self):
        outcome = FloodingOutcome("X", 0, 165)
        outcome.acts_to_first_trigger = [None, None]
        text = render_flooding([outcome])
        assert "no trigger" in text

    def test_comparison_render(self):
        text = render_comparison({"PARA": aggregate()})
        assert "PARA" in text
        assert "0.1000" in text
