"""Tests for the Pareto-frontier analysis."""

from hypothesis import given, strategies as st

from repro.analysis.pareto import (
    ParetoPoint,
    classify,
    dominated_by,
    from_fig4,
    pareto_frontier,
)


def point(name, size, overhead):
    return ParetoPoint(technique=name, table_bytes=size, overhead_pct=overhead)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert point("a", 10, 0.1).dominates(point("b", 20, 0.2))

    def test_equal_does_not_dominate(self):
        a, b = point("a", 10, 0.1), point("b", 10, 0.1)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_is_incomparable(self):
        a, b = point("a", 10, 0.2), point("b", 20, 0.1)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_better_on_one_axis_equal_other(self):
        assert point("a", 10, 0.1).dominates(point("b", 10, 0.2))


class TestFrontier:
    def test_dominated_point_excluded(self):
        points = [point("a", 10, 0.1), point("b", 20, 0.2), point("c", 5, 0.3)]
        frontier = {p.technique for p in pareto_frontier(points)}
        assert frontier == {"a", "c"}

    def test_frontier_sorted_by_size(self):
        points = [point("a", 10, 0.1), point("c", 5, 0.3)]
        assert [p.technique for p in pareto_frontier(points)] == ["c", "a"]

    def test_classify(self):
        points = [point("a", 10, 0.1), point("b", 20, 0.2)]
        assert classify(points) == {"a": True, "b": False}

    def test_dominated_by_pairs(self):
        points = [point("a", 10, 0.1), point("b", 20, 0.2)]
        assert ("a", "b") in dominated_by(points, "a")
        assert ("a", "b") in dominated_by(points, "b")

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1e6, allow_nan=False),
                st.floats(min_value=1e-4, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_frontier_never_empty_and_mutually_nondominated(self, raw):
        points = [point(f"t{i}", s, o) for i, (s, o) in enumerate(raw)]
        frontier = pareto_frontier(points)
        assert frontier
        for a in frontier:
            for b in frontier:
                assert not a.dominates(b) or a == b


class TestFig4Adapter:
    def test_from_fig4(self):
        raw = [{"technique": "PARA", "table_bytes": 1.0, "overhead_pct": 0.1}]
        points = from_fig4(raw)
        assert points[0].technique == "PARA"
        assert points[0].table_bytes == 1.0

    def test_measured_fig4_frontier_contains_tivapromi(self):
        """The paper's claim on our measured operating points: at least
        one TiVaPRoMi variant is Pareto-optimal, sitting between the
        probabilistic cluster and the tabled counters."""
        # measured values from EXPERIMENTS.md (stable under seeds)
        raw = [
            ("PARA", 1, 0.0994), ("ProHit", 34, 0.6766),
            ("MRLoc", 34, 0.1450), ("LiPRoMi", 120, 0.0391),
            ("LoPRoMi", 120, 0.0473), ("LoLiPRoMi", 120, 0.0467),
            ("CaPRoMi", 376, 0.0520), ("TWiCe", 3161, 0.0016),
            ("CRA", 131072, 0.0016),
        ]
        points = [point(name, size, overhead) for name, size, overhead in raw]
        flags = classify(points)
        assert flags["LiPRoMi"]           # on the frontier
        assert flags["PARA"]              # smallest table
        assert flags["TWiCe"]             # lowest overhead
        assert not flags["ProHit"]        # dominated by MRLoc
        assert not flags["CRA"]           # dominated by TWiCe
