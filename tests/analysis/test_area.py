"""Tests for the structural area model against Table III."""

import pytest

from repro.analysis.area import (
    fig4_points,
    search_parallelism,
    storage_reduction_vs_twice,
    table3_resources,
)
from repro.config import DDR3_TIMING, SimConfig


@pytest.fixture(scope="module")
def resources():
    return table3_resources(SimConfig())


class TestDDR4Calibration:
    """The DDR4 column must land close to the paper's synthesis."""

    PAPER = {
        "PARA": 349,
        "ProHit": 1_653,
        "MRLoc": 1_865,
        "LiPRoMi": 5_155,
        "LoPRoMi": 5_228,
        "LoLiPRoMi": 5_374,
        "CaPRoMi": 21_061,
        "TWiCe": 258_356,
        "CRA": 5_694_107,
    }

    @pytest.mark.parametrize("name", sorted(PAPER))
    def test_within_five_percent_of_paper(self, resources, name):
        ours = resources[name].luts_ddr4
        assert ours == pytest.approx(self.PAPER[name], rel=0.05), name

    def test_para_exact(self, resources):
        assert resources["PARA"].luts_ddr4 == 349

    def test_relative_ordering_matches_paper(self, resources):
        order = sorted(resources, key=lambda name: resources[name].luts_ddr4)
        assert order == [
            "PARA", "ProHit", "MRLoc",
            "LiPRoMi", "LoPRoMi", "LoLiPRoMi",
            "CaPRoMi", "TWiCe", "CRA",
        ]


class TestDDR3Derivation:
    def test_para_and_cra_unchanged(self, resources):
        """Section IV: only PARA and CRA fit the DDR3 budget as-is."""
        assert resources["PARA"].luts_ddr3 == resources["PARA"].luts_ddr4
        assert resources["CRA"].luts_ddr3 == resources["CRA"].luts_ddr4

    @pytest.mark.parametrize(
        "name",
        ["ProHit", "MRLoc", "TWiCe", "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"],
    )
    def test_others_grow_on_ddr3(self, resources, name):
        assert resources[name].luts_ddr3 > resources[name].luts_ddr4

    def test_tivapromi_ddr3_growth_modest(self, resources):
        """Paper: LiPRoMi grows 5155 -> 6586 (~1.3x), not orders of
        magnitude; the search lanes are small next to the storage."""
        ratio = resources["LiPRoMi"].luts_ddr3 / resources["LiPRoMi"].luts_ddr4
        assert 1.1 < ratio < 1.6

    def test_li_ddr3_close_to_paper(self, resources):
        assert resources["LiPRoMi"].luts_ddr3 == pytest.approx(6_586, rel=0.05)


class TestParallelism:
    def test_ddr4_baseline_parallelism_is_one(self):
        config = SimConfig()
        for name in ("PARA", "LiPRoMi", "ProHit", "MRLoc", "CaPRoMi"):
            assert search_parallelism(name, config, config.timing) == 1, name

    def test_ddr3_forces_parallel_search(self):
        config = SimConfig()
        assert search_parallelism("LiPRoMi", config, DDR3_TIMING) == 4
        assert search_parallelism("CaPRoMi", config, DDR3_TIMING) >= 3
        assert search_parallelism("PARA", config, DDR3_TIMING) == 1

    def test_unknown_technique_rejected(self):
        config = SimConfig()
        with pytest.raises(ValueError):
            search_parallelism("NoSuch", config, config.timing)


class TestHeadlineClaims:
    def test_storage_reduction_9x_to_27x(self):
        """Abstract: 9x-27x smaller tables than TWiCe."""
        reductions = storage_reduction_vs_twice(SimConfig())
        for name, reduction in reductions.items():
            assert 7.0 < reduction < 30.0, (name, reduction)
        assert reductions["CaPRoMi"] == min(reductions.values())

    def test_table_sizes_match_paper(self):
        resources = table3_resources(SimConfig())
        assert resources["LiPRoMi"].table_bytes == 120
        assert resources["CaPRoMi"].table_bytes == 376  # paper: 374
        assert resources["PARA"].table_bytes == 0


class TestFig4:
    def test_points_for_all_nine(self):
        points = fig4_points(SimConfig(), {"PARA": 0.1})
        assert len(points) == 9

    def test_para_plotted_at_one_byte(self):
        points = fig4_points(SimConfig(), {})
        para = next(p for p in points if p["technique"] == "PARA")
        assert para["table_bytes"] == 1.0

    def test_overheads_joined(self):
        points = fig4_points(SimConfig(), {"TWiCe": 0.004})
        twice = next(p for p in points if p["technique"] == "TWiCe")
        assert twice["overhead_pct"] == 0.004

    def test_x_axis_spans_orders_of_magnitude(self):
        points = fig4_points(SimConfig(), {})
        sizes = [p["table_bytes"] for p in points]
        assert max(sizes) / min(sizes) > 10_000
