"""Tests for the closed-form models, including simulator cross-checks."""


import pytest

from repro.analysis.theory import (
    counter_overhead_pct,
    expected_weight,
    flood_hazard,
    flood_median_acts,
    miss_probability,
    para_overhead_pct,
    tivapromi_overhead_pct_no_history,
)
from repro.config import SimConfig, small_test_config


class TestClosedForms:
    def test_para_overhead_exact(self):
        assert para_overhead_pct(0.001) == pytest.approx(0.1)

    def test_expected_linear_weight(self):
        assert expected_weight("linear", 8192) == pytest.approx(4095.5)

    def test_expected_log_weight_dominates_linear(self):
        assert expected_weight("log", 512) > expected_weight("linear", 512)

    def test_expected_log_weight_at_most_double(self):
        linear = expected_weight("linear", 512)
        assert expected_weight("log", 512) <= 2 * (linear + 1)

    def test_no_history_overhead_bound(self):
        """Without the history table, LiPRoMi's overhead is
        2 * E[w] * Pbase ~= 0.098 % at paper scale."""
        bound = tivapromi_overhead_pct_no_history("linear", SimConfig())
        assert bound == pytest.approx(0.0977, rel=0.02)

    def test_counter_overhead(self):
        assert counter_overhead_pct(100_000, 1_000_000, 34_750) == pytest.approx(
            100.0 * 2 * 2 / 1_000_000
        )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            expected_weight("cubic", 64)
        with pytest.raises(ValueError):
            flood_hazard("cubic", 10, 0, 165, SimConfig())


class TestFloodTheory:
    def test_paper_scale_linear_worst_phase_median_near_43k(self):
        """The EXPERIMENTS.md argument: a literal Eq. 1 worst-phase
        flood has its median first mitigation near 43 K activations --
        close to the paper's ~40 K for LiPRoMi."""
        median = flood_median_acts("linear", SimConfig(), start_weight=0)
        assert 38_000 < median < 48_000

    def test_paper_scale_log_worst_phase_median(self):
        """...and the log variants cannot reach the paper's 10 K from a
        worst-phase start: the hazard puts their median near 33-37 K."""
        median = flood_median_acts("log", SimConfig(), start_weight=0)
        assert 28_000 < median < 40_000
        assert median < flood_median_acts("linear", SimConfig(), start_weight=0)

    def test_mid_window_start_is_caught_fast(self):
        median = flood_median_acts("log", SimConfig(), start_weight=4096)
        assert median < 2_000

    def test_start_weight_384_lands_near_paper_10k(self):
        """A flood starting ~384 intervals past refresh gives the log
        variants a ~10 K median -- the phase that matches the paper."""
        median = flood_median_acts("log", SimConfig(), start_weight=384)
        assert 5_000 < median < 16_000

    def test_capromi_close_to_log(self):
        log_median = flood_median_acts("log", SimConfig(), start_weight=0)
        ca_median = flood_median_acts("capromi", SimConfig(), start_weight=0)
        assert ca_median == pytest.approx(log_median, rel=0.3)

    def test_miss_probability_decreases_with_activations(self):
        config = SimConfig()
        early = miss_probability("linear", config, 10_000)
        late = miss_probability("linear", config, 69_500)
        assert late < early < 1.0

    def test_never_triggering_returns_none(self):
        config = small_test_config().scaled(pbase=1e-15)
        assert flood_median_acts("linear", config, start_weight=0) is None


class TestSimulatorCrossValidation:
    def test_flood_median_matches_simulation(self):
        """The engine's flooding experiment must agree with the hazard
        model within sampling noise (paired at small scale)."""
        from repro.analysis.stats import median as stat_median
        from repro.sim.attacks import flooding_experiment

        config = small_test_config(rows_per_bank=4096)  # refint 512
        theory = flood_median_acts("log", config, start_weight=0)
        outcome = flooding_experiment(
            config, "LoPRoMi", start_weight=0, seeds=range(12), max_windows=2
        )
        measured = stat_median(outcome.triggered)
        assert measured == pytest.approx(theory, rel=0.6)

    def test_para_overhead_matches_simulation(self):
        from repro.mitigations.registry import make_factory
        from repro.sim.engine import run_simulation
        from repro.traces.mixer import build_trace
        from repro.traces.workload import WorkloadParams

        config = small_test_config()
        trace = build_trace(
            config,
            total_intervals=256,
            benign_params=WorkloadParams(avg_acts_per_interval=60),
            seed=5,
        )
        result = run_simulation(config, trace, make_factory("PARA"), seed=2)
        assert result.overhead_pct == pytest.approx(
            para_overhead_pct(0.001), rel=0.5
        )
