"""Tests for the statistics helpers."""


import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import mean, mean_pm_std, median, std

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_between_min_and_max(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


class TestStd:
    def test_known_value(self):
        assert std([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_single_value_zero(self):
        assert std([5.0]) == 0.0
        assert std([]) == 0.0

    def test_constant_sequence_zero(self):
        assert std([4.0] * 10) == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_non_negative(self, values):
        assert std(values) >= 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=50), finite_floats)
    def test_shift_invariant(self, values, shift):
        shifted = [value + shift for value in values]
        assert std(shifted) == pytest.approx(std(values), rel=1e-6, abs=1e-6)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_averages(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_within_range(self, values):
        assert min(values) <= median(values) <= max(values)


class TestFormat:
    def test_table3_cell_shape(self):
        cell = mean_pm_std([0.1, 0.2, 0.3])
        assert cell == "(0.2000 +- 0.1000)%"

    def test_digits_configurable(self):
        assert mean_pm_std([0.5], digits=2) == "(0.50 +- 0.00)%"
