"""Tests for trace characterisation."""

import pytest

from repro.analysis.trace_stats import characterize
from repro.config import small_test_config
from repro.traces.attacker import flooding
from repro.traces.mixer import build_trace, paper_mixed_workload
from repro.traces.record import Trace, TraceMeta, TraceRecord


def manual_trace():
    meta = TraceMeta(total_intervals=2, interval_ns=100, num_banks=2)
    records = [
        TraceRecord(0, 0, 5, False),
        TraceRecord(10, 0, 5, False),
        TraceRecord(20, 1, 7, True),
        TraceRecord(110, 0, 9, False),
    ]
    return Trace(meta=meta, records=records)


class TestCharacterize:
    def test_counts(self):
        stats = characterize(manual_trace())
        assert stats.total_activations == 4
        assert stats.attack_activations == 1
        assert stats.attack_fraction == 0.25
        assert stats.per_bank == {0: 3, 1: 1}

    def test_interval_bucket_stats(self):
        stats = characterize(manual_trace())
        assert stats.acts_per_interval_max == 2  # (interval 0, bank 0)
        assert stats.acts_per_interval_mean == pytest.approx(4 / 4)

    def test_row_stats(self):
        stats = characterize(manual_trace())
        assert stats.distinct_rows == 3
        assert stats.top32_share == 1.0

    def test_aggressor_rows(self):
        stats = characterize(manual_trace())
        assert stats.aggressors_per_bank == {1: 1}

    def test_empty_trace(self):
        meta = TraceMeta(total_intervals=1, interval_ns=100, num_banks=1)
        stats = characterize(Trace(meta=meta, records=[]))
        assert stats.total_activations == 0
        assert stats.attack_fraction == 0.0
        assert stats.acts_per_interval_max == 0

    def test_summary_rows_render(self):
        rows = characterize(manual_trace()).summary_rows()
        assert any("activations" in key for key, _ in rows)


class TestWorkloadCalibration:
    def test_paper_workload_rate_in_table1_band(self):
        """The paper measures ~40 activations per interval on average
        (including the attacker) against the physical max of 165; the
        synthetic workload must land in that regime on targeted banks
        and below it elsewhere."""
        config = small_test_config(num_banks=4)
        trace = paper_mixed_workload(
            config, total_intervals=config.geometry.refint, seed=0
        )
        stats = characterize(trace)
        assert 15 < stats.acts_per_interval_mean < 80
        assert stats.acts_per_interval_max <= config.timing.max_acts_per_interval

    def test_paper_workload_ramps_to_20_aggressors(self):
        config = small_test_config(num_banks=2, rows_per_bank=2048)
        trace = paper_mixed_workload(
            config, total_intervals=config.geometry.refint, seed=0
        )
        stats = characterize(trace)
        assert stats.aggressors_per_bank[0] == 20   # the ramp bank
        assert stats.aggressors_per_bank[1] == 2    # the double-sided pair

    def test_flood_trace_statistics(self):
        config = small_test_config()
        attack = flooding(config.geometry, 0, row=5, acts_per_interval=100)
        trace = build_trace(config, total_intervals=8, attacks=[attack])
        stats = characterize(trace)
        assert stats.attack_fraction == 1.0
        assert stats.distinct_rows == 1
        assert stats.acts_per_interval_max == 100
