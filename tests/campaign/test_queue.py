"""Filesystem work-queue: protocol units plus worker-kill integration.

Unit coverage of the on-disk protocol (ticket round trips, atomic
claim semantics, lease expiry, torn-file quarantine and sweeping,
self-heal evidence) and the headline integration scenarios from
``docs/distributed.md``: a leased worker SIGKILLed mid-shard is
reclaimed via lease expiry and the campaign still finishes
bit-identical to a single-host pool run, and a queue campaign whose
*driver* is SIGKILLed resumes bit-identically on another executor.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.campaign import (
    CampaignStore,
    FaultInjector,
    QueueExecutor,
    ShardTicket,
    WorkQueue,
    run_durable_campaign,
    run_worker,
)
from repro.campaign.faults import FAULT_ENV_VAR
from repro.config import small_test_config
from repro.sim.executors import CampaignJob
from repro.sim.parallel import RetryPolicy, run_campaign
from repro.telemetry.metrics import MetricsRegistry

TECHNIQUES = ("PARA", "TWiCe")
SEEDS = (0, 1)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def canonical(aggregates):
    return {
        name: [result.as_dict() for result in aggregate.results]
        for name, aggregate in aggregates.items()
    }


def make_job(config, technique="PARA", seed=0, **kwargs):
    kwargs.setdefault("engine", "fast")
    return CampaignJob(
        config=config, technique=technique, seed=seed, total_intervals=8,
        **kwargs,
    )


def spawn_worker(queue_dir, *extra):
    """An external ``repro campaign-worker`` subprocess, like another
    host's would be."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign-worker",
            str(queue_dir), "--poll-interval", "0.05",
            "--lease-refresh", "0.2", *extra,
        ],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def reap(procs, queue_dir):
    """Drain external workers: raise the stop sentinel, then escalate."""
    WorkQueue(queue_dir).request_stop()
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def wait_until(predicate, timeout=60.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"timed out after {timeout:.0f}s waiting for {message}")


class TestQueueProtocol:
    def test_ticket_round_trips_through_json(self, tmp_path):
        config = small_test_config(num_banks=2)
        injector = FaultInjector.from_rules([{"mode": "error"}])
        job = make_job(
            config, workload_kwargs=(("attack_fraction", 0.5),),
            collect_metrics=True, collect_spans=True, span_seed="abc",
            fault_injector=injector,
        )
        ticket = ShardTicket.from_job(job, attempt=3)
        rebuilt = ShardTicket.from_dict(json.loads(json.dumps(
            ticket.as_dict()
        )))
        back = rebuilt.to_job(tmp_path)
        assert back.config == job.config
        assert back.workload_kwargs == job.workload_kwargs
        assert (back.technique, back.seed, back.engine) == ("PARA", 0, "fast")
        assert back.attempt == 3
        assert back.collect_metrics and back.collect_spans
        assert back.span_seed == "abc"
        assert back.fault_injector == injector
        assert back.status_dir is None  # workers heartbeat the queue bus

    def test_claim_is_exclusive_and_starts_the_liveness_clock(self, tmp_path):
        config = small_test_config(num_banks=2)
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        wq.publish_ticket(ShardTicket.from_job(make_job(config)))
        before = time.time()
        ticket, lease = wq.claim_ticket()
        assert ticket.shard == "PARA__s0"
        assert lease.is_file() and not wq.ticket_path("PARA__s0").exists()
        # claim re-stamps the lease mtime: liveness starts at claim
        # time, not at whenever the runner published the ticket
        assert lease.stat().st_mtime >= before - 1.0
        assert wq.claim_ticket() is None  # nothing left to lease

    def test_torn_ticket_is_quarantined_not_retried(self, tmp_path):
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        wq.ticket_path("PARA__s0").write_text("{torn", encoding="utf-8")
        assert wq.claim_ticket() is None
        assert not wq.ticket_path("PARA__s0").exists()
        assert not wq.lease_path("PARA__s0").exists()
        quarantined = list(wq.failed_dir.glob("*.corrupt"))
        assert len(quarantined) == 1
        # a quarantined shard counts as absent: the runner's self-heal
        # evidence set must demand a fresh ticket for it
        assert "PARA__s0" not in wq.present_shards()

    def test_lease_expiry_and_reclaim(self, tmp_path):
        config = small_test_config(num_banks=2)
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        wq.publish_ticket(ShardTicket.from_job(make_job(config)))
        _, lease = wq.claim_ticket()
        assert wq.expired_leases(timeout=60.0) == []
        os.utime(lease, (1, 1))  # the holder went silent long ago
        expired = wq.expired_leases(timeout=60.0)
        assert [shard for shard, _ in expired] == ["PARA__s0"]
        ticket = wq.reclaim_lease(lease)
        assert ticket is not None and ticket.shard == "PARA__s0"
        assert not lease.exists()
        # a touch from a live holder resets the clock
        wq.publish_ticket(ShardTicket.from_job(make_job(config)))
        _, lease = wq.claim_ticket()
        os.utime(lease, (1, 1))
        wq.touch(lease)
        assert wq.expired_leases(timeout=60.0) == []

    def test_torn_lease_reclaim_and_result_sweep(self, tmp_path):
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        torn_lease = wq.lease_path("PARA__s0")
        torn_lease.write_text("{torn", encoding="utf-8")
        assert wq.reclaim_lease(torn_lease) is None
        assert not torn_lease.exists()
        wq.result_path("PARA__s1").write_text("{torn", encoding="utf-8")
        assert wq.read_results() == {}
        assert wq.sweep_torn_results() == 1
        assert not wq.result_path("PARA__s1").exists()

    def test_present_shards_covers_every_stage(self, tmp_path):
        config = small_test_config(num_banks=2)
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        wq.publish_ticket(ShardTicket.from_job(make_job(config, seed=0)))
        wq.publish_ticket(ShardTicket.from_job(make_job(config, seed=1)))
        _, lease = wq.claim_ticket()  # seed 0 moves to leases/
        wq.write_result({"shard": "TWiCe__s0", "technique": "TWiCe"})
        wq.write_failure(
            ShardTicket.from_job(make_job(config, technique="TWiCe", seed=1)),
            kind="error", error="boom",
        )
        assert wq.present_shards() == {
            "PARA__s0", "PARA__s1", "TWiCe__s0", "TWiCe__s1",
        }
        # failure reports are consumed exactly once
        reports = wq.take_failures()
        assert [r["shard"] for r in reports] == ["TWiCe__s1"]
        assert reports[0]["kind"] == "error"
        assert wq.take_failures() == []

    def test_stop_sentinel_drains_an_idle_worker(self, tmp_path):
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        wq.request_stop()
        assert run_worker(tmp_path, poll_interval=0.01) == 0

    def test_worker_runs_a_ticket_and_pushes_the_result(self, tmp_path):
        config = small_test_config(num_banks=2)
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        wq.publish_ticket(ShardTicket.from_job(make_job(config)))
        assert run_worker(tmp_path, poll_interval=0.01, max_shards=1) == 0
        results = wq.read_results()
        assert set(results) == {"PARA__s0"}
        record = results["PARA__s0"]
        assert record["technique"] == "PARA" and record["seed"] == 0
        assert record["worker"]["pid"] == os.getpid()
        assert not list(wq.leases_dir.glob("*.json"))  # lease released
        beats = {
            beat.worker: beat for beat in wq.status_bus().read_heartbeats()
        }
        assert beats["PARA__s0"].phase == "done"

    def test_worker_reports_a_failing_shard(self, tmp_path):
        config = small_test_config(num_banks=2)
        wq = WorkQueue(tmp_path)
        wq.ensure_layout()
        injector = FaultInjector.from_rules([{"mode": "error"}])
        wq.publish_ticket(ShardTicket.from_job(
            make_job(config, fault_injector=injector)
        ))
        assert run_worker(tmp_path, poll_interval=0.01, idle_exit=0.2) == 0
        assert wq.read_results() == {}
        reports = wq.take_failures()
        assert len(reports) == 1
        assert reports[0]["shard"] == "PARA__s0"
        assert reports[0]["kind"] == "error"
        assert "InjectedFault" in reports[0]["error"]
        assert not list(wq.leases_dir.glob("*.json"))


class TestQueueCampaigns:
    def test_external_workers_only(self, tmp_path):
        """The multi-host mode: the runner publishes work and waits;
        workers started separately (here: subprocesses) drain it."""
        config = small_test_config(num_banks=2)
        qdir = tmp_path / "q"
        workers = [spawn_worker(qdir), spawn_worker(qdir)]
        try:
            queued = run_campaign(
                config, 8, techniques=TECHNIQUES, seeds=SEEDS,
                engine="fast",
                executor=QueueExecutor(
                    qdir, workers=0, lease_timeout=30.0, poll_interval=0.05,
                ),
            )
        finally:
            reap(workers, qdir)
        reference = run_campaign(
            config, 8, techniques=TECHNIQUES, seeds=SEEDS, workers=2,
            engine="fast",
        )
        assert canonical(queued) == canonical(reference)

    def test_sigkilled_worker_is_reclaimed_bit_identically(self, tmp_path):
        """The headline distributed guarantee: SIGKILL a worker while
        it holds a lease; the lease expires, the shard re-runs on the
        surviving worker, and the final aggregates are bit-identical
        to a single-host pool run -- with the kill accounted as one
        ``timeout`` retry."""
        config = small_test_config(num_banks=2)
        qdir = tmp_path / "q"
        ckpt = tmp_path / "ckpt"
        # first attempt of PARA/seed 0 stalls long enough to be killed
        # mid-shard; the re-ticketed attempt 1 runs clean
        injector = FaultInjector.from_rules([{
            "mode": "hang", "technique": "PARA", "seed": 0,
            "attempts": [0], "seconds": 120.0,
        }])
        metrics = MetricsRegistry()
        box = {}

        def drive():
            box["aggregates"] = run_durable_campaign(
                config, 8, ckpt, techniques=TECHNIQUES, seeds=SEEDS,
                engine="fast",
                executor=QueueExecutor(
                    qdir, workers=0, lease_timeout=2.0, poll_interval=0.05,
                ),
                retry=RetryPolicy(max_retries=2, backoff_base=0),
                fault_injector=injector, sleep=lambda seconds: None,
                metrics=metrics,
            )

        workers = [spawn_worker(qdir), spawn_worker(qdir)]
        driver = threading.Thread(target=drive, name="queue-driver")
        driver.start()
        try:
            bus = WorkQueue(qdir).status_bus()

            def hung_worker_pid():
                for beat in bus.read_heartbeats():
                    if beat.worker == "PARA__s0" and beat.phase == "running":
                        return beat.pid
                return None

            pid = wait_until(hung_worker_pid,
                             message="a worker to lease the hung shard")
            os.kill(pid, signal.SIGKILL)
            driver.join(timeout=120)
            assert not driver.is_alive(), "campaign did not finish"
        finally:
            reap(workers, qdir)
            driver.join(timeout=10)
        assert "aggregates" in box
        reference = run_campaign(
            config, 8, techniques=TECHNIQUES, seeds=SEEDS, workers=2,
            engine="fast",
        )
        assert canonical(box["aggregates"]) == canonical(reference)
        assert not box["aggregates"].failures
        counters = metrics.as_dict()["counters"]
        assert counters["campaign.shard_timeouts"]["value"] >= 1
        assert counters["campaign.shard_retries"]["value"] >= 1
        assert CampaignStore(ckpt).status().complete

    def test_sigkilled_driver_resumes_bit_identical(self, tmp_path):
        """Kill the *runner* of a queue campaign mid-run: the shards
        its workers completed are already checkpointed, and a serial
        resume finishes the rest bit-identically -- executor choice is
        invisible to the durable-campaign contract."""
        ckpt = tmp_path / "ckpt"
        qdir = tmp_path / "q"
        driver = textwrap.dedent(
            """
            from repro.campaign import (
                FaultInjector, QueueExecutor, run_durable_campaign,
            )
            from repro.config import small_test_config

            run_durable_campaign(
                small_test_config(num_banks=2),
                total_intervals=8,
                checkpoint_dir={ckpt!r},
                techniques=("PARA", "TWiCe"),
                seeds=(0, 1),
                engine="fast",
                executor=QueueExecutor(
                    {qdir!r}, workers=2, poll_interval=0.05,
                ),
                fault_injector=FaultInjector.from_env(),
            )
            """
        ).format(ckpt=str(ckpt), qdir=str(qdir))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env[FAULT_ENV_VAR] = json.dumps([{
            "mode": "hang", "technique": "TWiCe", "seed": 1,
            "seconds": 120,
        }])
        proc = subprocess.Popen(
            [sys.executable, "-c", driver], env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        store = CampaignStore(ckpt)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store.exists and store.status().completed:
                    break
                if proc.poll() is not None:
                    _, stderr = proc.communicate()
                    pytest.fail(
                        "queue campaign exited before being killed:\n"
                        + stderr.decode("utf-8", "replace")
                    )
                time.sleep(0.05)
            else:
                pytest.fail("no shard was checkpointed within 60s")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            # the dead driver cannot raise the stop sentinel; do it for
            # its orphaned workers
            WorkQueue(qdir).request_stop()

        completed = len(store.status().completed)
        assert 1 <= completed < len(TECHNIQUES) * len(SEEDS)
        resumed = run_durable_campaign(
            small_test_config(num_banks=2), 8, ckpt, resume=True,
            techniques=TECHNIQUES, seeds=SEEDS, workers=0, engine="fast",
        )
        reference = run_campaign(
            small_test_config(num_banks=2), 8, techniques=TECHNIQUES,
            seeds=SEEDS, workers=0, engine="fast",
        )
        assert canonical(resumed) == canonical(reference)
        assert store.status().complete

    def test_lost_files_self_heal(self, tmp_path):
        """Deleting queue files mid-run only costs time: the runner
        re-publishes any unresolved shard absent from every stage."""
        config = small_test_config(num_banks=2)
        qdir = tmp_path / "q"
        executor = QueueExecutor(
            qdir, workers=0, lease_timeout=30.0, poll_interval=0.05,
        )
        wq = WorkQueue(qdir)
        box = {}

        def drive():
            box["aggregates"] = run_campaign(
                config, 8, techniques=("PARA",), seeds=(0,),
                engine="fast", executor=executor,
            )

        driver = threading.Thread(target=drive, name="heal-driver")
        driver.start()
        workers = []
        try:
            wait_until(
                lambda: list(wq.tickets_dir.glob("*.json")) or None,
                message="the ticket to be published",
            )
            # simulate a lost ticket (foreign deletion / corrupt
            # quarantine): the runner must notice and re-publish
            for path in wq.tickets_dir.glob("*.json"):
                path.unlink()
            wait_until(
                lambda: list(wq.tickets_dir.glob("*.json")) or None,
                message="the self-heal pass to re-publish the ticket",
            )
            workers.append(spawn_worker(qdir))
            driver.join(timeout=120)
            assert not driver.is_alive()
        finally:
            reap(workers, qdir)
            driver.join(timeout=10)
        reference = run_campaign(
            config, 8, techniques=("PARA",), seeds=(0,), workers=0,
            engine="fast",
        )
        assert canonical(box["aggregates"]) == canonical(reference)
