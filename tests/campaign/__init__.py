"""Tests for the durable campaign orchestration subsystem."""
