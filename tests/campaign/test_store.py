"""Tests for the campaign checkpoint store."""

import json

import pytest

from repro.campaign.store import (
    CampaignSpec,
    CampaignStateError,
    CampaignStore,
    CheckpointMismatchError,
    ShardRecord,
)
from repro.config import small_test_config
from repro.sim.metrics import SimResult
from repro.sim.parallel import ShardFailure


def make_spec(config=None, **overrides):
    kwargs = dict(
        engine="reference",
        total_intervals=16,
        techniques=("PARA", "TWiCe"),
        seeds=(0, 1),
    )
    kwargs.update(overrides)
    return CampaignSpec.build(config or small_test_config(), **kwargs)


def make_result(technique="PARA", seed=0):
    return SimResult(
        technique=technique, seed=seed, normal_activations=100,
        extra_activations=3, intervals_simulated=16, wall_seconds=1.25,
    )


class TestSpec:
    def test_round_trip(self):
        spec = make_spec()
        assert CampaignSpec.from_dict(spec.as_dict()) == spec

    def test_none_technique_becomes_string(self):
        spec = make_spec(techniques=(None, "PARA"))
        assert spec.techniques == ["none", "PARA"]

    def test_shard_keys_are_technique_major(self):
        assert make_spec().shard_keys() == [
            ("PARA", 0), ("PARA", 1), ("TWiCe", 0), ("TWiCe", 1),
        ]

    def test_mismatches_flag_config_and_grid_changes(self):
        spec = make_spec()
        other = make_spec(config=small_test_config(num_banks=2))
        assert "config_hash" in spec.mismatches(other)
        assert not spec.mismatches(make_spec())
        assert "seeds" in spec.mismatches(make_spec(seeds=(0,)))


class TestStore:
    def test_initialize_and_read_spec(self, tmp_path):
        store = CampaignStore(tmp_path / "ckpt")
        assert not store.exists
        with pytest.raises(CampaignStateError, match="no campaign checkpoint"):
            store.read_spec()
        spec = make_spec()
        store.initialize(spec)
        assert store.exists
        assert store.read_spec() == spec

    def test_ensure_matches_raises_with_clear_message(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(make_spec())
        mismatched = make_spec(config=small_test_config(num_banks=2))
        with pytest.raises(CheckpointMismatchError, match="config_hash"):
            store.ensure_matches(mismatched)
        store.ensure_matches(make_spec())  # identical spec passes

    def test_shard_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(make_spec())
        record = ShardRecord(
            technique="PARA", seed=1, result=make_result(seed=1),
            attempts=2, metrics={"counters": {}},
        )
        store.write_shard(record)
        loaded = store.load_shards()[("PARA", 1)]
        assert loaded.attempts == 2
        assert loaded.result.as_dict(include_wall=True) == (
            record.result.as_dict(include_wall=True)
        )

    def test_load_shards_skips_corrupt_and_tmp_files(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(make_spec())
        store.write_shard(
            ShardRecord(technique="PARA", seed=0, result=make_result())
        )
        (store.shard_dir / "TWiCe__s0.json").write_text("{not json", "utf-8")
        (store.shard_dir / "PARA__s1.json.12345.tmp").write_text("", "utf-8")
        assert set(store.load_shards()) == {("PARA", 0)}

    def test_failures_round_trip_and_missing_file(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.read_failures() == []
        failure = ShardFailure(
            technique="PARA", seed=0, attempts=3, kind="timeout",
            error="ShardTimeout: exceeded 5s",
        )
        store.write_failures([failure])
        assert store.read_failures() == [failure]

    def test_status_partitions_completed_and_missing(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(make_spec())
        store.write_shard(
            ShardRecord(technique="PARA", seed=0, result=make_result())
        )
        status = store.status()
        assert status.total == 4
        assert status.completed == [("PARA", 0)]
        assert ("TWiCe", 1) in status.missing
        assert not status.complete

    def test_writes_are_atomic_onto_existing_files(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(make_spec())
        store.write_shard(
            ShardRecord(technique="PARA", seed=0, result=make_result())
        )
        updated = ShardRecord(
            technique="PARA", seed=0, result=make_result(), attempts=5
        )
        store.write_shard(updated)
        payload = json.loads(
            store.shard_path("PARA", 0).read_text(encoding="utf-8")
        )
        assert payload["attempts"] == 5
        # no temp litter left behind
        assert list(store.shard_dir.glob("*.tmp")) == []
