"""Tests for the durable (checkpoint/resume) campaign runner."""

import pytest

from repro.campaign import (
    CampaignStateError,
    CampaignStore,
    CheckpointMismatchError,
    FaultInjector,
    run_durable_campaign,
)
from repro.config import small_test_config
from repro.sim.parallel import RetryPolicy, run_campaign
from repro.telemetry.metrics import MetricsRegistry

TECHNIQUES = ("PARA", "TWiCe")
SEEDS = (0, 1)


def canonical(aggregates):
    """Bit-exact comparable view of campaign aggregates."""
    return {
        name: [result.as_dict() for result in aggregate.results]
        for name, aggregate in aggregates.items()
    }


def durable(config, ckpt, **kwargs):
    kwargs.setdefault("techniques", TECHNIQUES)
    kwargs.setdefault("seeds", SEEDS)
    kwargs.setdefault("workers", 0)
    return run_durable_campaign(config, 8, ckpt, **kwargs)


class TestDurableCampaign:
    def test_matches_plain_run_campaign(self, tmp_path):
        config = small_test_config(num_banks=2)
        plain = run_campaign(
            config, total_intervals=8, techniques=TECHNIQUES, seeds=SEEDS,
            workers=0,
        )
        assert canonical(durable(config, tmp_path / "ckpt")) == canonical(plain)

    def test_existing_checkpoint_requires_resume(self, tmp_path):
        config = small_test_config(num_banks=2)
        durable(config, tmp_path / "ckpt")
        with pytest.raises(CampaignStateError, match="--resume"):
            durable(config, tmp_path / "ckpt")

    def test_resume_of_complete_campaign_is_identical_noop(self, tmp_path):
        config = small_test_config(num_banks=2)
        first = durable(config, tmp_path / "ckpt")
        resumed = durable(config, tmp_path / "ckpt", resume=True)
        assert canonical(resumed) == canonical(first)

    def test_resume_recomputes_only_missing_shards(self, tmp_path):
        config = small_test_config(num_banks=2)
        first = durable(config, tmp_path / "ckpt")
        store = CampaignStore(tmp_path / "ckpt")
        store.shard_path("PARA", 1).unlink()
        completed = []
        resumed = durable(
            config, tmp_path / "ckpt", resume=True,
            progress=lambda done, total: completed.append((done, total)),
        )
        assert canonical(resumed) == canonical(first)
        assert completed[-1] == (1, 1)  # exactly one shard re-ran

    def test_resume_mismatched_config_fails_fast(self, tmp_path):
        durable(small_test_config(num_banks=2), tmp_path / "ckpt")
        with pytest.raises(CheckpointMismatchError, match="config_hash"):
            durable(
                small_test_config(num_banks=1), tmp_path / "ckpt", resume=True
            )

    def test_resume_mismatched_grid_fails_fast(self, tmp_path):
        config = small_test_config(num_banks=2)
        durable(config, tmp_path / "ckpt")
        with pytest.raises(CheckpointMismatchError, match="seeds"):
            durable(config, tmp_path / "ckpt", resume=True, seeds=(0, 1, 2))

    def test_metrics_identical_between_fresh_and_resumed(self, tmp_path):
        config = small_test_config(num_banks=2)
        fresh = MetricsRegistry()
        durable(config, tmp_path / "a", metrics=fresh)
        store = CampaignStore(tmp_path / "a")
        store.shard_path("TWiCe", 0).unlink()
        resumed = MetricsRegistry()
        durable(config, tmp_path / "a", resume=True, metrics=resumed)
        assert resumed.as_dict() == fresh.as_dict()

    def test_degraded_shard_heals_on_resume(self, tmp_path):
        config = small_test_config(num_banks=2)
        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "PARA", "seed": 1}]
        )
        degraded = durable(
            config, tmp_path / "ckpt",
            retry=RetryPolicy(max_retries=1, backoff_base=0,
                              on_failure="skip"),
            fault_injector=injector, sleep=lambda seconds: None,
        )
        assert degraded["PARA"].degraded_seeds == [1]
        assert [f.seed for f in degraded.failures] == [1]
        store = CampaignStore(tmp_path / "ckpt")
        assert not store.status().complete
        healed = durable(config, tmp_path / "ckpt", resume=True)
        assert healed["PARA"].degraded_seeds == []
        assert store.status().complete
        reference = durable(config, tmp_path / "ref")
        assert canonical(healed) == canonical(reference)

    def test_on_failure_raise_leaves_resumable_checkpoint(self, tmp_path):
        config = small_test_config(num_banks=2)
        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "TWiCe", "seed": 1}]
        )
        with pytest.raises(Exception, match="injected worker error"):
            durable(
                config, tmp_path / "ckpt",
                retry=RetryPolicy(max_retries=0, on_failure="raise"),
                fault_injector=injector,
            )
        store = CampaignStore(tmp_path / "ckpt")
        completed = store.status().completed
        assert ("TWiCe", 1) not in completed
        assert len(completed) >= 1  # earlier shards were checkpointed
        healed = durable(config, tmp_path / "ckpt", resume=True)
        reference = durable(config, tmp_path / "ref")
        assert canonical(healed) == canonical(reference)
