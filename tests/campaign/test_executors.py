"""The executor contract suite: every lane owes the same guarantees.

One parametrized pass over the registered execution lanes (serial,
local pool, filesystem queue) asserting the contract spelled out in
``repro.sim.executors`` and ``docs/distributed.md``: bit-identical
aggregates against a serial baseline, streaming shard/progress
callbacks, retry healing, degraded-shard accounting parity, and the
durable-campaign guarantees (checkpointing, resume) holding
per-executor.  A lane that cannot honor one of these must not ship.
"""

import pytest

from repro.campaign import (
    CampaignStore,
    FaultInjector,
    QueueExecutor,
    run_durable_campaign,
)
from repro.config import small_test_config
from repro.sim.executors import get_executor
from repro.sim.parallel import RetryPolicy, run_campaign
from repro.telemetry.metrics import MetricsRegistry

TECHNIQUES = ("PARA", "TWiCe")
SEEDS = (0, 1)
TOTAL_SHARDS = len(TECHNIQUES) * len(SEEDS)

LANES = ("serial", "pool", "queue")


def canonical(aggregates):
    """Bit-exact comparable view of campaign aggregates."""
    return {
        name: [result.as_dict() for result in aggregate.results]
        for name, aggregate in aggregates.items()
    }


def make_executor(lane, tmp_path):
    """One configured executor per lane; queue gets a private directory
    and two spawned local workers so the test is self-contained."""
    if lane == "queue":
        return QueueExecutor(
            tmp_path / "queue", workers=2, lease_timeout=30.0,
            poll_interval=0.05,
        )
    return lane


def campaign(config, lane, tmp_path, **kwargs):
    kwargs.setdefault("techniques", TECHNIQUES)
    kwargs.setdefault("seeds", SEEDS)
    kwargs.setdefault("engine", "fast")
    return run_campaign(
        config, 8, workers=kwargs.pop("workers", 2),
        executor=make_executor(lane, tmp_path), **kwargs,
    )


@pytest.fixture(scope="module")
def baseline():
    """Serial reference aggregates every lane must reproduce exactly."""
    config = small_test_config(num_banks=2)
    return canonical(run_campaign(
        config, 8, techniques=TECHNIQUES, seeds=SEEDS, workers=0,
        engine="fast",
    ))


@pytest.mark.parametrize("lane", LANES)
class TestExecutorContract:
    def test_bit_identical_aggregates(self, lane, tmp_path, baseline):
        config = small_test_config(num_banks=2)
        assert canonical(campaign(config, lane, tmp_path)) == baseline

    def test_streaming_callbacks(self, lane, tmp_path):
        """Shard and progress callbacks fire per shard as results land,
        and the final progress frame covers the whole grid."""
        config = small_test_config(num_banks=2)
        landed = []
        frames = []
        campaign(
            config, lane, tmp_path,
            shard_callback=lambda outcome, attempts: landed.append(
                (outcome[0], outcome[1], attempts)
            ),
            progress=lambda done, total: frames.append((done, total)),
        )
        assert sorted((name, seed) for name, seed, _ in landed) == sorted(
            (name, seed) for name in TECHNIQUES for seed in SEEDS
        )
        assert all(attempts == 1 for _, _, attempts in landed)
        assert frames[-1] == (TOTAL_SHARDS, TOTAL_SHARDS)

    def test_retry_heals_transient_fault(self, lane, tmp_path, baseline):
        """A shard that fails its first attempt only is retried to
        success: aggregates stay bit-identical and nothing degrades."""
        config = small_test_config(num_banks=2)
        injector = FaultInjector.from_rules([{
            "mode": "error", "technique": "PARA", "seed": 1,
            "attempts": [0],
        }])
        metrics = MetricsRegistry()
        healed = campaign(
            config, lane, tmp_path,
            retry=RetryPolicy(max_retries=2, backoff_base=0),
            fault_injector=injector, sleep=lambda seconds: None,
            metrics=metrics,
        )
        assert canonical(healed) == baseline
        assert not healed.failures
        counters = metrics.as_dict()["counters"]
        assert counters["campaign.shard_errors"]["value"] == 1
        assert counters["campaign.shard_retries"]["value"] == 1

    def test_degraded_accounting_parity(self, lane, tmp_path):
        """Exhausted shards degrade identically on every lane: same
        failure record, same degraded seed, same fault counters."""
        config = small_test_config(num_banks=2)
        injector = FaultInjector.from_rules([
            {"mode": "error", "technique": "PARA", "seed": 1}
        ])
        metrics = MetricsRegistry()
        degraded = campaign(
            config, lane, tmp_path,
            retry=RetryPolicy(max_retries=1, backoff_base=0,
                              on_failure="skip"),
            fault_injector=injector, sleep=lambda seconds: None,
            metrics=metrics,
        )
        assert degraded["PARA"].degraded_seeds == [1]
        assert len(degraded.failures) == 1
        failure = degraded.failures[0]
        assert (failure.technique, failure.seed) == ("PARA", 1)
        assert failure.attempts == 2
        assert failure.kind == "error"
        counters = metrics.as_dict()["counters"]
        assert counters["campaign.shard_errors"]["value"] == 2
        assert counters["campaign.shard_retries"]["value"] == 1
        assert counters["campaign.shards_degraded"]["value"] == 1
        # the healthy shards are untouched by the degraded one
        healthy = canonical(degraded)
        healthy.pop("PARA")
        reference = canonical(run_campaign(
            config, 8, techniques=("TWiCe",), seeds=SEEDS, workers=0,
            engine="fast",
        ))
        assert healthy == reference

    def test_durable_campaign_and_resume(self, lane, tmp_path):
        """PR3's durability invariants hold per-executor: shards are
        checkpointed as they land, a deleted shard is recomputed on
        resume, and the rebuilt aggregates are bit-identical."""
        config = small_test_config(num_banks=2)
        ckpt = tmp_path / "ckpt"
        first = run_durable_campaign(
            config, 8, ckpt, techniques=TECHNIQUES, seeds=SEEDS,
            workers=2, engine="fast",
            executor=make_executor(lane, tmp_path),
        )
        store = CampaignStore(ckpt)
        assert store.status().complete
        store.shard_path("PARA", 1).unlink()
        resumed = run_durable_campaign(
            config, 8, ckpt, resume=True, techniques=TECHNIQUES,
            seeds=SEEDS, workers=2, engine="fast",
            executor=make_executor(lane, tmp_path / "again"),
        )
        assert canonical(resumed) == canonical(first)
        assert store.status().complete


class TestGetExecutor:
    def test_auto_follows_workers(self):
        assert get_executor(None, workers=0).name == "serial"
        assert get_executor("auto", workers=2).name == "pool"

    def test_instances_pass_through(self, tmp_path):
        executor = QueueExecutor(tmp_path / "q")
        assert get_executor(executor) is executor

    def test_bare_queue_name_needs_a_directory(self):
        with pytest.raises(ValueError, match="queue directory"):
            get_executor("queue")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("carrier-pigeon")

    def test_pool_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="positive worker count"):
            get_executor("pool", workers=0)
