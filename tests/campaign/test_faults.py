"""Tests for the deterministic fault injector."""

import json
import pickle

import pytest

from repro.campaign.faults import (
    FAULT_ENV_VAR,
    FaultInjector,
    FaultRule,
    InjectedFault,
    SimulatedCrash,
)


class TestFaultRule:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultRule(mode="explode")

    def test_wildcards_match_everything(self):
        rule = FaultRule(mode="error")
        assert rule.matches("PARA", 0, 0)
        assert rule.matches("TWiCe", 7, 3)

    def test_specific_fields_filter(self):
        rule = FaultRule(mode="error", technique="PARA", seed=1, attempts=(0, 1))
        assert rule.matches("PARA", 1, 0)
        assert rule.matches("PARA", 1, 1)
        assert not rule.matches("PARA", 1, 2)  # attempt outside window
        assert not rule.matches("PARA", 0, 0)  # wrong seed
        assert not rule.matches("TWiCe", 1, 0)  # wrong technique

    def test_dict_round_trip(self):
        rule = FaultRule(mode="hang", technique="PARA", attempts=(0,), seconds=2.5)
        assert FaultRule.from_dict(rule.as_dict()) == rule


class TestFaultInjector:
    def test_no_rules_is_a_noop(self):
        FaultInjector().fire("PARA", 0, 0)  # must not raise

    def test_error_rule_raises_injected_fault(self):
        injector = FaultInjector.from_rules(
            [{"mode": "error", "technique": "PARA"}]
        )
        with pytest.raises(InjectedFault, match="PARA/seed=0/attempt=0"):
            injector.fire("PARA", 0, 0)
        injector.fire("TWiCe", 0, 0)  # non-matching shard unaffected

    def test_crash_inline_raises_simulated_crash(self):
        injector = FaultInjector.from_rules([{"mode": "crash"}])
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.fire("PARA", 0, 0, in_worker=False)
        assert excinfo.value.shard_fault_kind == "crash"

    def test_hang_sleeps_for_rule_seconds(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.campaign.faults.time.sleep", slept.append)
        injector = FaultInjector.from_rules([{"mode": "hang", "seconds": 9.0}])
        injector.fire("PARA", 0, 0)
        assert slept == [9.0]

    def test_attempt_window_allows_eventual_success(self):
        injector = FaultInjector.from_rules(
            [{"mode": "error", "attempts": [0, 1]}]
        )
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                injector.fire("PARA", 0, attempt)
        injector.fire("PARA", 0, 2)  # third attempt passes

    def test_spec_round_trip_and_pickle(self):
        injector = FaultInjector.from_rules(
            [{"mode": "crash", "technique": "PARA", "seed": 1, "attempts": [0]}]
        )
        assert FaultInjector.from_spec(injector.spec()) == injector
        assert pickle.loads(pickle.dumps(injector)) == injector

    def test_from_spec_rejects_non_list(self):
        with pytest.raises(ValueError, match="JSON list"):
            FaultInjector.from_spec('{"mode": "error"}')

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(
            FAULT_ENV_VAR, json.dumps([{"mode": "error", "seed": 3}])
        )
        injector = FaultInjector.from_env()
        assert injector is not None
        assert injector.rules[0].seed == 3
