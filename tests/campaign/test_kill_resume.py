"""Kill-and-resume determinism: the acceptance test for durable campaigns.

A subprocess starts a real campaign whose last shard hangs (via the
``REPRO_FAULT_INJECT`` env hook), gets SIGKILLed mid-run with some shards
checkpointed and some not, and the campaign is then resumed in-process
without the fault.  The resumed aggregates must be bit-identical to an
uninterrupted reference run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.campaign import (
    CampaignStore,
    CheckpointMismatchError,
    run_durable_campaign,
)
from repro.campaign.faults import FAULT_ENV_VAR
from repro.config import small_test_config

TECHNIQUES = ("PARA", "TWiCe")
SEEDS = (0, 1)
TOTAL_SHARDS = len(TECHNIQUES) * len(SEEDS)

# The driver script run in the doomed subprocess: same campaign the test
# later resumes, except the injected hang keeps the final shard busy until
# the test kills the process.
DRIVER = textwrap.dedent(
    """
    from repro.campaign import FaultInjector, run_durable_campaign
    from repro.config import small_test_config

    run_durable_campaign(
        small_test_config(num_banks=2),
        total_intervals=8,
        checkpoint_dir={ckpt!r},
        techniques=("PARA", "TWiCe"),
        seeds=(0, 1),
        workers=0,
        engine={engine!r},
        fault_injector=FaultInjector.from_env(),
    )
    """
)

HANG_LAST_SHARD = json.dumps(
    [{"mode": "hang", "technique": "TWiCe", "seed": 1, "seconds": 120}]
)


def start_doomed_campaign(ckpt, engine="fast"):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env[FAULT_ENV_VAR] = HANG_LAST_SHARD
    return subprocess.Popen(
        [sys.executable, "-c", DRIVER.format(ckpt=str(ckpt), engine=engine)],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def wait_for_checkpointed_shard(store, proc, timeout=60.0):
    """Poll until at least one shard file has been durably written."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if store.exists and store.status().completed:
            return
        if proc.poll() is not None:
            _, stderr = proc.communicate()
            pytest.fail(
                "campaign subprocess exited before being killed:\n"
                + stderr.decode("utf-8", "replace")
            )
        time.sleep(0.05)
    proc.kill()
    pytest.fail("no shard was checkpointed within %.0fs" % timeout)


def canonical(aggregates):
    return {
        name: [result.as_dict() for result in aggregate.results]
        for name, aggregate in aggregates.items()
    }


class TestKillResume:
    def test_sigkilled_campaign_resumes_bit_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        store = CampaignStore(ckpt)
        proc = start_doomed_campaign(ckpt)
        try:
            wait_for_checkpointed_shard(store, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        completed = len(store.status().completed)
        assert 1 <= completed < TOTAL_SHARDS, (
            "kill must land mid-campaign; got %d/%d shards"
            % (completed, TOTAL_SHARDS)
        )

        resumed = run_durable_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            checkpoint_dir=ckpt,
            resume=True,
            techniques=TECHNIQUES,
            seeds=SEEDS,
            workers=0,
            engine="fast",
        )
        reference = run_durable_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            checkpoint_dir=tmp_path / "reference",
            techniques=TECHNIQUES,
            seeds=SEEDS,
            workers=0,
            engine="fast",
        )
        assert canonical(resumed) == canonical(reference)
        assert store.status().complete
        assert not resumed.failures

    def test_sigkilled_fused_campaign_resumes_bit_identical(self, tmp_path):
        """The fused engine honours the same durability contract.

        The doomed subprocess runs fused per-cell shards (the fault
        injector disables block dispatch), the resume completes the
        remaining shards as a fused block, and the merged aggregates
        must equal both an uninterrupted fused run and an uninterrupted
        fast-engine run -- per-cell checkpoints and whole-grid blocks
        compose without drift.
        """
        ckpt = tmp_path / "ckpt"
        store = CampaignStore(ckpt)
        proc = start_doomed_campaign(ckpt, engine="fused")
        try:
            wait_for_checkpointed_shard(store, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        completed = len(store.status().completed)
        assert 1 <= completed < TOTAL_SHARDS, (
            "kill must land mid-campaign; got %d/%d shards"
            % (completed, TOTAL_SHARDS)
        )

        resumed = run_durable_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            checkpoint_dir=ckpt,
            resume=True,
            techniques=TECHNIQUES,
            seeds=SEEDS,
            workers=0,
            engine="fused",
        )
        reference = run_durable_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            checkpoint_dir=tmp_path / "reference",
            techniques=TECHNIQUES,
            seeds=SEEDS,
            workers=0,
            engine="fused",
        )
        fast = run_durable_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            checkpoint_dir=tmp_path / "fast",
            techniques=TECHNIQUES,
            seeds=SEEDS,
            workers=0,
            engine="fast",
        )
        assert canonical(resumed) == canonical(reference)
        assert canonical(resumed) == canonical(fast)
        assert store.status().complete
        assert not resumed.failures

    def test_fused_resume_rejects_changed_grid(self, tmp_path):
        """Config-hash validation covers fused campaigns: a resume with
        a different cell grid (changed geometry) fails fast instead of
        silently mixing checkpoints from incompatible campaigns."""
        ckpt = tmp_path / "ckpt"
        store = CampaignStore(ckpt)
        proc = start_doomed_campaign(ckpt, engine="fused")
        try:
            wait_for_checkpointed_shard(store, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        with pytest.raises(CheckpointMismatchError, match="config_hash"):
            run_durable_campaign(
                small_test_config(num_banks=4),
                total_intervals=8,
                checkpoint_dir=ckpt,
                resume=True,
                techniques=TECHNIQUES,
                seeds=SEEDS,
                workers=0,
                engine="fused",
            )

    def test_resume_with_different_config_fails_fast(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        store = CampaignStore(ckpt)
        proc = start_doomed_campaign(ckpt)
        try:
            wait_for_checkpointed_shard(store, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        with pytest.raises(CheckpointMismatchError, match="config_hash"):
            run_durable_campaign(
                small_test_config(num_banks=4),
                total_intervals=8,
                checkpoint_dir=ckpt,
                resume=True,
                techniques=TECHNIQUES,
                seeds=SEEDS,
                workers=0,
                engine="fast",
            )
