"""Observability-plane integration: crash consistency and zero drift.

Three contracts from the live-observability PR:

* the status bus is **never torn**: every ``*.json`` under
  ``<ckpt>/status`` parses, even after the publishing campaign is
  SIGKILLed mid-run (the writers go through ``write_json_atomic``);
* span summaries are **resume-safe**: a killed-and-resumed campaign
  rebuilds a span summary bit-identical to an uninterrupted run's,
  because shard span trees are checkpointed with the shards and
  re-adopted in canonical order;
* observability is **pure observation**: enabling spans + status
  produces aggregates bit-identical to a run with both disabled, and
  toggling them never invalidates ``--resume``.
"""

import json
import signal
import time

from repro.campaign import CampaignStore, run_durable_campaign
from repro.config import small_test_config
from repro.sim.parallel import run_campaign
from repro.telemetry import (
    MetricsRegistry,
    SpanTracer,
    StatusBus,
    WorkerHeartbeat,
    registry_from_prometheus,
    to_prometheus,
)

from tests.campaign.test_kill_resume import (
    SEEDS,
    TECHNIQUES,
    canonical,
    start_doomed_campaign,
    wait_for_checkpointed_shard,
)


def durable(ckpt, resume=False, spans=None, engine="fast", **kwargs):
    return run_durable_campaign(
        small_test_config(num_banks=2),
        total_intervals=8,
        checkpoint_dir=ckpt,
        resume=resume,
        techniques=TECHNIQUES,
        seeds=SEEDS,
        workers=0,
        engine=engine,
        spans=spans,
        **kwargs,
    )


class TestCrashConsistency:
    def test_status_bus_never_torn_and_span_summary_resumes_identical(
        self, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        store = CampaignStore(ckpt)
        proc = start_doomed_campaign(ckpt)
        try:
            wait_for_checkpointed_shard(store, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        # every surviving status record parses -- atomic writes cannot
        # leave a half-written JSON file behind, only ignorable *.tmp
        status_dir = ckpt / "status"
        status_files = list(status_dir.rglob("*.json"))
        assert status_files, "the doomed campaign never published status"
        for path in status_files:
            json.loads(path.read_text(encoding="utf-8"))
        bus = StatusBus.for_checkpoint(ckpt)
        assert bus.read_snapshot() is not None
        assert bus.read_heartbeats()  # parsed, not skipped as torn

        # resume with spans the original invocation never asked for:
        # shard trees were checkpointed anyway, so the summary is the
        # uninterrupted run's, bit for bit
        resumed_spans = SpanTracer(id_seed="caller")
        resumed = durable(ckpt, resume=True, spans=resumed_spans)
        reference_spans = SpanTracer(id_seed="caller")
        reference = durable(tmp_path / "reference", spans=reference_spans)
        assert canonical(resumed) == canonical(reference)
        assert resumed_spans.summary() == reference_spans.summary()
        assert "campaign/shard/simulate" in \
            resumed_spans.summary()["paths"]

        # the resume refreshed the snapshot to the store's truth
        final = bus.read_snapshot()
        assert final.complete
        assert final.done == final.total == len(TECHNIQUES) * len(SEEDS)


class TestZeroDrift:
    def test_fused_aggregates_identical_with_and_without_observability(
        self, tmp_path
    ):
        spans = SpanTracer(id_seed="cfg")
        enabled = durable(tmp_path / "on", engine="fused", spans=spans)
        disabled = durable(
            tmp_path / "off", engine="fused", publish_status=False,
        )
        assert canonical(enabled) == canonical(disabled)
        assert "campaign/shard" in spans.summary()["paths"]
        assert (tmp_path / "on" / "status" / "campaign.json").is_file()
        assert not (tmp_path / "off" / "status").exists()

    def test_inline_campaign_identical_with_and_without_observability(
        self, tmp_path
    ):
        config = small_test_config(num_banks=2)
        kwargs = dict(
            total_intervals=8, techniques=TECHNIQUES, seeds=SEEDS,
            workers=0,
        )
        plain = run_campaign(config, **kwargs)
        spans = SpanTracer(id_seed="cfg")
        bus = StatusBus(tmp_path / "status")
        observed = run_campaign(config, spans=spans, status=bus, **kwargs)
        assert canonical(plain) == canonical(observed)
        assert bus.read_snapshot().complete
        assert len(bus.read_heartbeats()) == len(TECHNIQUES) * len(SEEDS)
        assert all(b.phase == "done" for b in bus.read_heartbeats())

    def test_observability_toggle_never_invalidates_resume(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        durable(ckpt, publish_status=False)  # no status, no spans
        # re-running with full observability is a valid resume, not a
        # CheckpointMismatchError: nothing observable enters the spec
        spans = SpanTracer(id_seed="cfg")
        resumed = durable(ckpt, resume=True, spans=spans)
        assert not resumed.failures
        assert spans.summary()["paths"]["campaign"]["count"] == 1


class TestStaleDetection:
    def test_stale_heartbeat_surfaces_in_campaign_metric(self, tmp_path):
        bus = StatusBus(tmp_path / "status", stale_after=0.001)
        bus.publish_heartbeat(WorkerHeartbeat(
            worker="ghost__s9", cells_done=0, cells_total=1,
            mono=time.monotonic() - 60.0,
        ))
        metrics = MetricsRegistry()
        run_campaign(
            small_test_config(num_banks=2),
            total_intervals=8,
            techniques=("PARA",),
            seeds=(0, 1),
            workers=0,
            status=bus,
            metrics=metrics,
        )
        stale = metrics.counters["campaign.workers_stale"].value
        assert stale >= 1
        assert bus.read_snapshot().stale >= 0


class TestExportAcceptance:
    def test_campaign_metrics_round_trip_through_prometheus(self, tmp_path):
        metrics = MetricsRegistry()
        durable(tmp_path / "ckpt", metrics=metrics)
        back = registry_from_prometheus(to_prometheus(metrics))
        assert back.as_dict() == metrics.as_dict()
        assert back.counters["campaign.shards_completed"].value == \
            len(TECHNIQUES) * len(SEEDS)
