"""Tests for LiPRoMi / LoPRoMi / LoLiPRoMi."""

import pytest

from repro.config import small_test_config
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi
from repro.core.weights import log_weight
from repro.mitigations.base import ActivateNeighbors


def config():
    return small_test_config()  # refint = 64, pbase = 2^-16


class TestWeightSources:
    def test_weight_from_refresh_slot_without_history(self):
        li = LiPRoMi(config())
        # row 8 is refreshed at interval 1; at interval 11 its weight is 10
        raw, in_table = li.raw_weight(8, 11)
        assert raw == 10
        assert not in_table

    def test_weight_wraps_for_late_refresh_slots(self):
        li = LiPRoMi(config())
        # row 504 has f_r = 63; at interval 2 it was refreshed 3 ago
        raw, _ = li.raw_weight(504, 2)
        assert raw == 2 - 63 + 64

    def test_history_entry_shrinks_weight(self):
        li = LiPRoMi(config())
        li.history.record(8, 9)  # mitigated at interval 9
        raw, in_table = li.raw_weight(8, 11)
        assert raw == 2
        assert in_table

    def test_interval_is_window_relative(self):
        li = LiPRoMi(config())
        refint = config().geometry.refint
        raw_first, _ = li.raw_weight(8, 11)
        raw_later, _ = li.raw_weight(8, 11 + 5 * refint)
        assert raw_first == raw_later


class TestVariantWeighting:
    def test_linear_uses_raw(self):
        assert LiPRoMi(config()).effective_weight(20, in_table=False) == 20

    def test_log_uses_eq2(self):
        assert LoPRoMi(config()).effective_weight(20, in_table=False) == 32

    def test_loli_log_for_unknown_rows(self):
        assert LoLiPRoMi(config()).effective_weight(20, in_table=False) == 32

    def test_loli_linear_for_table_rows(self):
        assert LoLiPRoMi(config()).effective_weight(20, in_table=True) == 20

    def test_trigger_probability_formula(self):
        cfg = config()
        li = LiPRoMi(cfg)
        # row 8 at interval 11: w = 10, p = 10 * pbase
        assert li.trigger_probability(8, 11) == pytest.approx(10 * cfg.pbase)
        lo = LoPRoMi(cfg)
        assert lo.trigger_probability(8, 11) == pytest.approx(
            log_weight(10) * cfg.pbase
        )

    def test_lo_probability_at_least_li(self):
        cfg = config()
        li, lo = LiPRoMi(cfg), LoPRoMi(cfg)
        for interval in range(0, 64, 7):
            for row in (8, 100, 300):
                assert lo.trigger_probability(row, interval) >= li.trigger_probability(
                    row, interval
                )


class TestTriggerPath:
    def test_trigger_issues_act_n_and_records_history(self):
        cfg = config().scaled(pbase=0.999999 / 64)  # near-certain at high w
        li = LiPRoMi(cfg, seed=1)
        actions = li.on_activation(8, 60)  # w = 59, p ~= 0.92
        attempts = 0
        while not actions and attempts < 50:
            actions = li.on_activation(8, 60)
            attempts += 1
        assert actions == (ActivateNeighbors(row=8),)
        assert li.history.lookup(8) == 60

    def test_zero_weight_never_triggers(self):
        li = LiPRoMi(config(), seed=1)
        # row 8 at interval 1 (its refresh slot): w = 0, p = 0
        for _ in range(500):
            assert li.on_activation(8, 1) == ()

    def test_trigger_suppresses_future_probability(self):
        """Section III: after an act_n the history entry restarts the
        weight, so the row stops causing unneeded extra activations."""
        cfg = config().scaled(pbase=0.01)
        li = LiPRoMi(cfg, seed=3)
        before = li.trigger_probability(8, 52)  # w = 51
        while not li.on_activation(8, 52):
            pass  # p ~= 0.51: triggers quickly
        after = li.trigger_probability(8, 52)  # history entry -> w = 0
        assert after == 0.0
        assert before > 0.5


class TestWindowReset:
    def test_history_cleared_at_window_start(self):
        cfg = config()
        li = LiPRoMi(cfg)
        li.history.record(8, 10)
        li.on_refresh(cfg.geometry.refint)  # window-relative 0
        assert li.history.lookup(8) is None

    def test_history_kept_mid_window(self):
        li = LiPRoMi(config())
        li.history.record(8, 10)
        li.on_refresh(33)
        assert li.history.lookup(8) == 10

    def test_ref_returns_no_actions(self):
        assert LiPRoMi(config()).on_refresh(0) == ()


class TestStorage:
    def test_table_bytes_delegates_to_history(self):
        from repro.config import SimConfig

        li = LiPRoMi(SimConfig())
        assert li.table_bytes == 120

    def test_vulnerability_metadata(self):
        assert LiPRoMi.known_vulnerabilities
        assert LoPRoMi.known_vulnerabilities == ()
        assert LoLiPRoMi.known_vulnerabilities == ()
