"""Tests for the executable Fig. 2 / Fig. 3 FSMs.

The key property is *differential agreement*: driven with the same
random stream, the FSM implementation and the behavioural classes in
``repro.core.tivapromi``/``capromi`` must make identical decisions,
and the cycles an executed loop consumes must equal Table II.
"""

import random

import pytest

from repro.config import small_test_config
from repro.core.capromi import CaPRoMi
from repro.core.fsm import Fig2FSM, Fig3FSM
from repro.core.timing import act_cycles, ref_cycles
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi


VARIANTS = {
    "linear": ("LiPRoMi", LiPRoMi),
    "log": ("LoPRoMi", LoPRoMi),
    "loli": ("LoLiPRoMi", LoLiPRoMi),
}


class TestFig2Cycles:
    @pytest.mark.parametrize("weighting", ["linear", "log", "loli"])
    def test_act_cycles_match_table2_model(self, weighting):
        from repro.config import SimConfig

        config = SimConfig()
        name = VARIANTS[weighting][0]
        fsm = Fig2FSM(config, weighting)
        fsm.on_act(100, 40)
        assert fsm.last_cycles == act_cycles(name, config)

    @pytest.mark.parametrize("weighting", ["linear", "log", "loli"])
    def test_ref_cycles_match_table2_model(self, weighting):
        from repro.config import SimConfig

        config = SimConfig()
        name = VARIANTS[weighting][0]
        fsm = Fig2FSM(config, weighting)
        fsm.on_ref(5)
        assert fsm.last_cycles == ref_cycles(name, config)

    def test_cycles_independent_of_decision(self):
        config = small_test_config()
        fsm = Fig2FSM(config, "linear")
        cycle_counts = set()
        for interval in range(0, 60, 3):
            fsm.on_act(8, interval)
            cycle_counts.add(fsm.last_cycles)
        assert len(cycle_counts) == 1

    def test_rejects_unknown_weighting(self):
        with pytest.raises(ValueError):
            Fig2FSM(small_test_config(), "cubic")


class TestFig2Differential:
    @pytest.mark.parametrize("weighting", ["linear", "log", "loli"])
    def test_fsm_agrees_with_behavioural_class(self, weighting):
        """Same random stream -> identical decisions and table state."""
        config = small_test_config()
        _, cls = VARIANTS[weighting]
        fsm = Fig2FSM(config, weighting, seed=0)
        behavioural = cls(config, seed=0)
        fsm.rng = random.Random(1234)
        behavioural._rng = random.Random(1234)
        refint = config.geometry.refint
        rng = random.Random(7)
        interval = 0
        for step in range(3000):
            if step % 25 == 0:
                interval += 1
                fsm.on_ref(interval)
                behavioural.on_refresh(interval)
            row = rng.randrange(config.geometry.rows_per_bank)
            fsm_decision = fsm.on_act(row, interval)
            class_decision = bool(behavioural.on_activation(row, interval))
            assert fsm_decision == class_decision, (step, row, interval)
        # the history tables must have evolved identically
        fsm_rows = [(entry.row, entry.interval) for entry in fsm.table._entries]
        cls_rows = [
            (entry.row, entry.interval)
            for entry in behavioural.history._entries
        ]
        assert fsm_rows == cls_rows


class TestFig3:
    def test_act_cycles_match_table2(self):
        from repro.config import SimConfig

        config = SimConfig()
        fsm = Fig3FSM(config)
        fsm.on_act(100, 40)
        assert fsm.last_cycles == act_cycles("CaPRoMi", config)

    def test_ref_cycles_match_table2(self):
        from repro.config import SimConfig

        config = SimConfig()
        fsm = Fig3FSM(config)
        fsm.on_ref(40)
        assert fsm.last_cycles == ref_cycles("CaPRoMi", config)

    def test_differential_with_capromi(self):
        config = small_test_config()
        fsm = Fig3FSM(config, seed=0)
        behavioural = CaPRoMi(config, seed=0)
        fsm.rng = random.Random(99)
        behavioural._rng = random.Random(99)
        # identical counter-table eviction randomness as well
        fsm.counters._rng = random.Random(55)
        behavioural.counters._rng = random.Random(55)
        rng = random.Random(3)
        interval = 1
        for step in range(2000):
            if step % 30 == 0:
                interval += 1
                fsm_issued = set(fsm.on_ref(interval))
                class_issued = {
                    action.row for action in behavioural.on_refresh(interval)
                }
                assert fsm_issued == class_issued, (step, interval)
            row = rng.randrange(config.geometry.rows_per_bank)
            fsm.on_act(row, interval)
            behavioural.on_activation(row, interval)

    def test_window_reset_clears_tables(self):
        config = small_test_config()
        fsm = Fig3FSM(config)
        fsm.on_act(50, 5)
        fsm.history.record(50, 5)
        issued = fsm.on_ref(config.geometry.refint)
        assert issued == []
        assert len(fsm.counters) == 0
        assert fsm.history.lookup(50) is None
