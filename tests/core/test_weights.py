"""Tests for Eq. 1 / Eq. 2 weight functions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.weights import linear_weight, log_weight, probability


class TestLinearWeight:
    def test_same_interval_is_zero(self):
        assert linear_weight(5, 5, 64) == 0

    def test_simple_difference(self):
        assert linear_weight(10, 3, 64) == 7

    def test_wraps_when_refresh_is_later_in_window(self):
        # row refreshed at interval 60, current interval 2:
        # refreshed in the previous window, 2 - 60 + 64 = 6 intervals ago
        assert linear_weight(2, 60, 64) == 6

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            linear_weight(64, 0, 64)
        with pytest.raises(ValueError):
            linear_weight(0, 64, 64)
        with pytest.raises(ValueError):
            linear_weight(-1, 0, 64)

    @given(
        current=st.integers(min_value=0, max_value=8191),
        refresh=st.integers(min_value=0, max_value=8191),
    )
    def test_always_in_window_range(self, current, refresh):
        weight = linear_weight(current, refresh, 8192)
        assert 0 <= weight < 8192

    @given(
        refresh=st.integers(min_value=0, max_value=8191),
        elapsed=st.integers(min_value=0, max_value=8191),
    )
    def test_elapsed_roundtrip(self, refresh, elapsed):
        current = (refresh + elapsed) % 8192
        assert linear_weight(current, refresh, 8192) == elapsed


class TestLogWeight:
    def test_paper_example_16_to_31_is_32(self):
        for weight in range(16, 32):
            assert log_weight(weight) == 32

    def test_zero_maps_to_one(self):
        assert log_weight(0) == 1

    def test_small_values(self):
        assert log_weight(1) == 2
        assert log_weight(2) == 4
        assert log_weight(3) == 4
        assert log_weight(4) == 8
        assert log_weight(7) == 8
        assert log_weight(8) == 16

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_weight(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_formula(self, weight):
        expected = 2 ** math.ceil(math.log2(weight + 1))
        assert log_weight(weight) == expected

    @given(st.integers(min_value=0, max_value=10_000))
    def test_dominates_linear(self, weight):
        """Eq. 2 never yields a lower probability than Eq. 1."""
        assert log_weight(weight) >= max(weight, 1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_at_most_double_plus_one(self, weight):
        assert log_weight(weight) <= 2 * (weight + 1)

    @given(st.integers(min_value=0, max_value=9_999))
    def test_monotone(self, weight):
        assert log_weight(weight + 1) >= log_weight(weight)


class TestProbability:
    def test_scales_linearly(self):
        assert probability(10, 0.001) == pytest.approx(0.01)

    def test_capped_at_one(self):
        assert probability(10_000, 0.001) == 1.0

    def test_zero_weight_zero_probability(self):
        assert probability(0, 0.5) == 0.0
