"""Tests for Eq. 1 / Eq. 2 weight functions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.weights import (
    linear_weight,
    log_weight,
    probability,
    trigger_probability,
)


class TestLinearWeight:
    def test_same_interval_is_zero(self):
        assert linear_weight(5, 5, 64) == 0

    def test_simple_difference(self):
        assert linear_weight(10, 3, 64) == 7

    def test_wraps_when_refresh_is_later_in_window(self):
        # row refreshed at interval 60, current interval 2:
        # refreshed in the previous window, 2 - 60 + 64 = 6 intervals ago
        assert linear_weight(2, 60, 64) == 6

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            linear_weight(64, 0, 64)
        with pytest.raises(ValueError):
            linear_weight(0, 64, 64)
        with pytest.raises(ValueError):
            linear_weight(-1, 0, 64)

    @given(
        current=st.integers(min_value=0, max_value=8191),
        refresh=st.integers(min_value=0, max_value=8191),
    )
    def test_always_in_window_range(self, current, refresh):
        weight = linear_weight(current, refresh, 8192)
        assert 0 <= weight < 8192

    @given(
        refresh=st.integers(min_value=0, max_value=8191),
        elapsed=st.integers(min_value=0, max_value=8191),
    )
    def test_elapsed_roundtrip(self, refresh, elapsed):
        current = (refresh + elapsed) % 8192
        assert linear_weight(current, refresh, 8192) == elapsed


class TestLogWeight:
    def test_paper_example_16_to_31_is_32(self):
        for weight in range(16, 32):
            assert log_weight(weight) == 32

    def test_zero_maps_to_one(self):
        assert log_weight(0) == 1

    def test_small_values(self):
        assert log_weight(1) == 2
        assert log_weight(2) == 4
        assert log_weight(3) == 4
        assert log_weight(4) == 8
        assert log_weight(7) == 8
        assert log_weight(8) == 16

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_weight(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_formula(self, weight):
        expected = 2 ** math.ceil(math.log2(weight + 1))
        assert log_weight(weight) == expected

    @given(st.integers(min_value=0, max_value=10_000))
    def test_dominates_linear(self, weight):
        """Eq. 2 never yields a lower probability than Eq. 1."""
        assert log_weight(weight) >= max(weight, 1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_at_most_double_plus_one(self, weight):
        assert log_weight(weight) <= 2 * (weight + 1)

    @given(st.integers(min_value=0, max_value=9_999))
    def test_monotone(self, weight):
        assert log_weight(weight + 1) >= log_weight(weight)


class TestProbability:
    def test_scales_linearly(self):
        assert probability(10, 0.001) == pytest.approx(0.01)

    def test_capped_at_one(self):
        assert probability(10_000, 0.001) == 1.0

    def test_zero_weight_zero_probability(self):
        assert probability(0, 0.5) == 0.0

class TestLogWeightBound:
    @given(st.integers(min_value=0, max_value=100_000))
    def test_power_of_two_and_tight(self, weight):
        """Eq. 2 bound: ``w_log = 2^k`` with ``2^(k-1) < w + 1 <= 2^k``."""
        quantised = log_weight(weight)
        assert quantised & (quantised - 1) == 0  # exact power of two
        assert quantised // 2 < weight + 1 <= quantised


class TestTriggerProbability:
    @given(
        refresh=st.integers(min_value=0, max_value=63),
        elapsed=st.integers(min_value=0, max_value=62),
        pbase=st.floats(min_value=1e-6, max_value=0.5),
        weighting=st.sampled_from(["linear", "log", "loli"]),
        in_table=st.booleans(),
    )
    def test_monotone_in_intervals_since_refresh(
        self, refresh, elapsed, pbase, weighting, in_table
    ):
        """More intervals since the last refresh never lowers p."""
        now = (refresh + elapsed) % 64
        later = (refresh + elapsed + 1) % 64
        p_now = trigger_probability(now, refresh, 64, pbase, weighting, in_table)
        p_later = trigger_probability(later, refresh, 64, pbase, weighting, in_table)
        assert 0.0 <= p_now <= p_later <= 1.0

    @given(
        current=st.integers(min_value=0, max_value=63),
        refresh=st.integers(min_value=0, max_value=63),
        pbase=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_composes_the_weight_functions(self, current, refresh, pbase):
        weight = linear_weight(current, refresh, 64)
        assert trigger_probability(
            current, refresh, 64, pbase, "linear"
        ) == probability(weight, pbase)
        assert trigger_probability(
            current, refresh, 64, pbase, "log"
        ) == probability(log_weight(weight), pbase)

    @given(
        current=st.integers(min_value=0, max_value=63),
        refresh=st.integers(min_value=0, max_value=63),
    )
    def test_loli_switches_on_table_membership(self, current, refresh):
        """LoLiPRoMi: linear weight inside the table, log weight outside."""
        pbase = 1e-4
        in_table = trigger_probability(current, refresh, 64, pbase, "loli", True)
        outside = trigger_probability(current, refresh, 64, pbase, "loli", False)
        assert in_table == trigger_probability(current, refresh, 64, pbase, "linear")
        assert outside == trigger_probability(current, refresh, 64, pbase, "log")

    def test_rejects_unknown_weighting(self):
        with pytest.raises(ValueError):
            trigger_probability(0, 0, 64, 0.001, "quadratic")
