"""Tests for the TiVaPRoMi history table."""

import pytest
from hypothesis import given, strategies as st

from repro.core.history_table import HistoryTable


def make(entries=4, refint=64):
    return HistoryTable(entries=entries, refint=refint)


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            make(entries=0)

    def test_lookup_miss_returns_none(self):
        assert make().lookup(5) is None

    def test_record_then_lookup(self):
        table = make()
        table.record(5, 10)
        assert table.lookup(5) == 10

    def test_record_validates_interval(self):
        with pytest.raises(ValueError):
            make(refint=64).record(5, 64)

    def test_update_in_place(self):
        table = make()
        table.record(5, 10)
        table.record(5, 20)
        assert table.lookup(5) == 20
        assert len(table) == 1

    def test_clear(self):
        table = make()
        table.record(5, 10)
        table.clear()
        assert table.lookup(5) is None
        assert len(table) == 0


class TestFIFO:
    def test_oldest_evicted_at_capacity(self):
        table = make(entries=2)
        table.record(1, 0)
        table.record(2, 1)
        table.record(3, 2)
        assert table.lookup(1) is None
        assert table.lookup(2) == 1
        assert table.lookup(3) == 2

    def test_update_does_not_refresh_fifo_position(self):
        """The paper's table is plain FIFO: updating a row's interval
        keeps its queue position."""
        table = make(entries=2)
        table.record(1, 0)
        table.record(2, 1)
        table.record(1, 5)  # update in place
        table.record(3, 2)  # evicts row 1 (still oldest)
        assert table.lookup(1) is None
        assert table.lookup(2) == 1

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=100))
    def test_capacity_never_exceeded(self, rows):
        table = make(entries=4)
        for index, row in enumerate(rows):
            table.record(row, index % 64)
        assert len(table) <= 4


class TestSearch:
    def test_sequential_search_steps_counted(self):
        table = make()
        table.record(1, 0)
        table.record(2, 0)
        table.lookup(2)
        assert table.last_search_steps == 2

    def test_lookup_index(self):
        table = make()
        table.record(7, 3)
        table.record(9, 4)
        assert table.lookup_index(9) == 1
        assert table.lookup_index(8) == -1

    def test_entry_at(self):
        table = make()
        table.record(7, 3)
        entry = table.entry_at(0)
        assert entry.row == 7 and entry.interval == 3
        assert table.entry_at(5) is None


class TestStorage:
    def test_paper_size_is_120_bytes(self):
        """32 entries x (17-bit row + 13-bit interval) = 120 B (Section IV)."""
        table = HistoryTable(entries=32, refint=8192)
        assert table.table_bytes == 120

    def test_interval_bits(self):
        assert HistoryTable(entries=1, refint=8192).interval_bits == 13
        assert HistoryTable(entries=1, refint=64).interval_bits == 6

class TestFIFOProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=63),
            ),
            max_size=120,
        )
    )
    def test_matches_insertion_ordered_dict_model(self, ops):
        """The table behaves exactly like an insertion-ordered dict with
        oldest-first eviction: update-in-place keeps an entry's position,
        a new entry at capacity evicts the head.  The fast engine's
        history-table mirror relies on precisely this equivalence."""
        capacity = 4
        table = HistoryTable(entries=capacity, refint=64)
        model = {}
        for row, interval in ops:
            table.record(row, interval)
            if row in model:
                model[row] = interval
            else:
                if len(model) >= capacity:
                    del model[next(iter(model))]
                model[row] = interval
            assert len(table) == len(model)
            entries = [table.entry_at(i) for i in range(len(table))]
            assert [(e.row, e.interval) for e in entries] == list(model.items())
        for row in range(16):
            assert table.lookup(row) == model.get(row)
