"""Tests for the Table II FSM cycle model."""

import pytest

from repro.config import DDR3_TIMING, SimConfig, small_test_config
from repro.core.timing import (
    act_cycles,
    budget_check,
    capromi_act_plan,
    capromi_ref_plan,
    cycle_report,
    probabilistic_act_plan,
    probabilistic_ref_plan,
    ref_cycles,
    required_parallelism,
    table2,
)


class TestTable2PaperNumbers:
    """Table II of the paper, reproduced exactly."""

    def test_act_cycles(self):
        cycles = table2(SimConfig())
        assert cycles["CaPRoMi"]["act"] == 50
        assert cycles["LoLiPRoMi"]["act"] == 36
        assert cycles["LoPRoMi"]["act"] == 37
        assert cycles["LiPRoMi"]["act"] == 37

    def test_ref_cycles(self):
        cycles = table2(SimConfig())
        assert cycles["CaPRoMi"]["ref"] == 258
        for variant in ("LoLiPRoMi", "LoPRoMi", "LiPRoMi"):
            assert cycles[variant]["ref"] == 3

    def test_no_budget_violations_on_ddr4(self):
        assert all(budget_check(SimConfig()).values())

    def test_report_mentions_budgets(self):
        lines = cycle_report(SimConfig())
        assert any("54" in line for line in lines)
        assert any("420" in line for line in lines)
        assert all("VIOLATION" not in line for line in lines[1:])


class TestPlans:
    def test_act_plan_states_match_fig2(self):
        plan = probabilistic_act_plan("LiPRoMi")
        states = [step.state for step in plan.steps]
        assert "search in table" in states
        assert "calculate weight" in states
        assert "decide" in states

    def test_ref_plan_is_three_single_cycle_states(self):
        plan = probabilistic_ref_plan("LoPRoMi")
        assert plan.total == 3
        assert all(step.cycles == 1 for step in plan.steps)

    def test_capromi_act_plan_structure(self):
        plan = capromi_act_plan()
        states = [step.state for step in plan.steps]
        assert "search/increase" in states
        assert "find linked" in states
        assert plan.total == 50

    def test_capromi_ref_sweep_dominates(self):
        plan = capromi_ref_plan()
        sweep = next(s for s in plan.steps if "sweep" in s.state)
        assert sweep.cycles == 256

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            probabilistic_act_plan("PARA")
        with pytest.raises(ValueError):
            probabilistic_ref_plan("CaPRoMi")


class TestScaling:
    def test_cycles_scale_with_table_size(self):
        small = small_test_config()  # 8-entry history table
        big = SimConfig()            # 32 entries
        assert act_cycles("LiPRoMi", small) < act_cycles("LiPRoMi", big)

    def test_parallelism_reduces_cycles(self):
        config = SimConfig()
        assert act_cycles("LiPRoMi", config, parallelism=4) < act_cycles(
            "LiPRoMi", config, parallelism=1
        )
        assert ref_cycles("CaPRoMi", config, parallelism=4) < ref_cycles(
            "CaPRoMi", config, parallelism=1
        )

    def test_ddr3_needs_more_parallelism(self):
        """Section IV: the 320 MHz DDR3 controller's budget forces the
        table-searching variants to raise per-cycle parallelism."""
        config = SimConfig()
        for variant in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
            ddr4 = required_parallelism(variant, config, config.timing)
            ddr3 = required_parallelism(variant, config, DDR3_TIMING)
            assert ddr3 > ddr4, variant

    def test_ddr3_parallelism_fits_budget(self):
        config = SimConfig()
        for variant in ("LiPRoMi", "CaPRoMi"):
            p = required_parallelism(variant, config, DDR3_TIMING)
            assert act_cycles(variant, config, p) <= DDR3_TIMING.act_cycle_budget
            assert ref_cycles(variant, config, p) <= DDR3_TIMING.ref_cycle_budget

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            act_cycles("LiPRoMi", SimConfig(), parallelism=0)
