"""Tests for CaPRoMi's counter table."""

import pytest
from hypothesis import given, strategies as st

from repro.core.counter_table import CounterTable


def make(entries=4, lock_threshold=3, seed=0):
    return CounterTable(entries=entries, lock_threshold=lock_threshold, seed=seed)


class TestCounting:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make(entries=0)
        with pytest.raises(ValueError):
            make(lock_threshold=0)

    def test_first_observation_inserts_with_count_one(self):
        table = make()
        entry = table.observe(5)
        assert entry.count == 1
        assert not entry.locked

    def test_counts_increment(self):
        table = make()
        table.observe(5)
        entry = table.observe(5)
        assert entry.count == 2

    def test_lock_at_threshold(self):
        table = make(lock_threshold=3)
        table.observe(5)
        table.observe(5)
        entry = table.observe(5)
        assert entry.count == 3
        assert entry.locked

    def test_history_link_stored_and_updated(self):
        table = make()
        entry = table.observe(5, history_link=2)
        assert entry.history_link == 2
        entry = table.observe(5, history_link=7)
        assert entry.history_link == 7

    def test_missing_link_not_overwritten(self):
        table = make()
        table.observe(5, history_link=2)
        entry = table.observe(5, history_link=-1)
        assert entry.history_link == 2


class TestReplacement:
    def test_random_eviction_when_full(self):
        table = make(entries=2)
        table.observe(1)
        table.observe(2)
        table.observe(3)
        assert len(table) == 2
        assert table.get(3) is not None

    def test_locked_entries_never_evicted(self):
        table = make(entries=2, lock_threshold=2)
        for _ in range(2):
            table.observe(1)
            table.observe(2)
        # both locked; new rows are dropped
        assert table.observe(3) is None
        assert table.dropped == 1
        assert table.get(1) is not None and table.get(2) is not None

    def test_unlocked_entry_sacrificed_before_drop(self):
        table = make(entries=2, lock_threshold=2)
        table.observe(1)
        table.observe(1)  # locked
        table.observe(2)  # unlocked
        assert table.observe(3) is not None
        assert table.get(1) is not None  # survivor
        assert table.get(2) is None

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    def test_capacity_invariant(self, rows):
        table = make(entries=8, lock_threshold=4)
        for row in rows:
            table.observe(row)
        assert len(table) <= 8


class TestClearAndStorage:
    def test_clear(self):
        table = make()
        table.observe(5)
        table.clear()
        assert len(table) == 0
        assert table.get(5) is None

    def test_paper_scale_storage(self):
        """64-entry table + 32-entry history -> ~374 B total (Section IV).

        Our bit layout gives 256 B for the counter table; with the
        120 B history table that is 376 B vs the paper's 374 B.
        """
        table = CounterTable(entries=64, lock_threshold=32)
        assert table.table_bytes(history_entries=32) == 256
