"""Tests for CaPRoMi's counter-assisted collective decisions."""


from repro.config import small_test_config
from repro.core.capromi import CaPRoMi
from repro.mitigations.base import ActivateNeighbors


def config(**kwargs):
    return small_test_config(**kwargs)


class TestActivationPath:
    def test_activation_never_acts_immediately(self):
        capromi = CaPRoMi(config())
        for _ in range(200):
            assert capromi.on_activation(50, 5) == ()

    def test_activations_counted(self):
        capromi = CaPRoMi(config())
        for _ in range(3):
            capromi.on_activation(50, 5)
        assert capromi.counters.get(50).count == 3

    def test_history_hit_links_entry(self):
        capromi = CaPRoMi(config())
        capromi.history.record(50, 2)
        capromi.on_activation(50, 5)
        assert capromi.counters.get(50).history_link == 0


class TestCollectiveDecision:
    def test_certain_decision_issues_act_n_and_updates_history(self):
        cfg = config().scaled(pbase=0.5)  # cnt * w_log * 0.5 >> 1
        capromi = CaPRoMi(cfg, seed=1)
        for _ in range(10):
            capromi.on_activation(50, 5)
        actions = capromi.on_refresh(6)
        assert ActivateNeighbors(row=50) in actions
        assert capromi.history.lookup(50) == 6

    def test_counters_cleared_every_interval(self):
        capromi = CaPRoMi(config())
        capromi.on_activation(50, 5)
        capromi.on_refresh(6)
        assert len(capromi.counters) == 0

    def test_zero_weight_rows_not_activated(self):
        cfg = config().scaled(pbase=0.5)
        capromi = CaPRoMi(cfg, seed=1)
        # row 8's refresh slot is interval 1; at decision interval 1 its
        # weight is 0 but Eq. 2 maps it to 1, so p = cnt * 1 * pbase;
        # use a row whose slot IS the decision interval with tiny pbase
        low = CaPRoMi(config(), seed=1)
        low.on_activation(8, 0)
        actions = low.on_refresh(1)
        assert ActivateNeighbors(row=8) not in actions

    def test_history_link_lowers_weight(self):
        cfg = config()
        capromi = CaPRoMi(cfg)
        # row 8 (f_r = 1) at decision interval 40: weight 39 without
        # history; with a history entry at interval 38 the weight is 2
        assert capromi._entry_weight(8, -1, 40) == 39
        capromi.history.record(8, 38)
        link = capromi.history.lookup_index(8)
        assert capromi._entry_weight(8, link, 40) == 2

    def test_stale_link_falls_back_to_refresh_slot(self):
        capromi = CaPRoMi(config())
        capromi.history.record(99, 38)  # some other row at index 0
        assert capromi._entry_weight(8, 0, 40) == 39

    def test_trigger_rate_grows_with_count(self):
        cfg = config().scaled(pbase=2.0 ** -12)
        hot_triggers = 0
        cold_triggers = 0
        for seed in range(40):
            hot = CaPRoMi(cfg, seed=seed)
            cold = CaPRoMi(cfg, seed=seed)
            for _ in range(30):
                hot.on_activation(100, 40)
            cold.on_activation(100, 40)
            hot_triggers += len(hot.on_refresh(41))
            cold_triggers += len(cold.on_refresh(41))
        assert hot_triggers > cold_triggers


class TestWindowReset:
    def test_window_start_clears_both_tables(self):
        cfg = config()
        capromi = CaPRoMi(cfg)
        capromi.on_activation(50, 5)
        capromi.history.record(50, 5)
        actions = capromi.on_refresh(cfg.geometry.refint)  # window start
        assert actions == ()
        assert len(capromi.counters) == 0
        assert capromi.history.lookup(50) is None


class TestStorage:
    def test_paper_scale_total_is_376_bytes(self):
        from repro.config import SimConfig

        capromi = CaPRoMi(SimConfig())
        # paper reports 374 B; our explicit bit layout gives 120 + 256
        assert capromi.table_bytes == 376

    def test_not_marked_vulnerable(self):
        assert CaPRoMi.known_vulnerabilities == ()
