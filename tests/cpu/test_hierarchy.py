"""Tests for the L1/L2 hierarchy."""

from repro.cpu.hierarchy import CacheHierarchy, HierarchyParams, MemoryRequest


def tiny():
    return CacheHierarchy(HierarchyParams(
        l1_size=256, l1_ways=2, l2_size=1024, l2_ways=2, line_size=64
    ))


class TestFiltering:
    def test_cold_miss_reaches_dram(self):
        hierarchy = tiny()
        requests = hierarchy.access(0x1000)
        assert MemoryRequest(0x1000, False) in requests

    def test_l1_hit_reaches_nothing(self):
        hierarchy = tiny()
        hierarchy.access(0x1000)
        assert hierarchy.access(0x1000) == []

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = tiny()  # L1: 2 sets x 2 ways
        hierarchy.access(0x0000)
        # lines 0x100, 0x200 map to L1 set 0 as well -> evict 0x0000
        hierarchy.access(0x0100)
        hierarchy.access(0x0200)
        requests = hierarchy.access(0x0000)
        assert requests == []  # L1 miss, L2 hit: no DRAM traffic

    def test_default_params_match_table1(self):
        hierarchy = CacheHierarchy()
        assert hierarchy.l1.size_bytes == 64 * 1024
        assert hierarchy.l2.size_bytes == 256 * 1024


class TestWritebacks:
    def test_dirty_l2_victim_reaches_dram(self):
        hierarchy = tiny()  # L2: 8 sets... compute carefully below
        # dirty a line, then stream enough conflicting lines through to
        # evict it from both levels
        hierarchy.access(0x0000, is_write=True)
        seen = []
        for index in range(1, 64):
            seen.extend(hierarchy.access(index * 0x400, is_write=False))
        writebacks = [request for request in seen if request.is_write]
        assert MemoryRequest(0x0000, True) in writebacks


class TestFlush:
    def test_flush_clean_line_no_traffic(self):
        hierarchy = tiny()
        hierarchy.access(0x1000)
        assert hierarchy.flush(0x1000) == []

    def test_flush_dirty_line_writes_back(self):
        hierarchy = tiny()
        hierarchy.access(0x1000, is_write=True)
        requests = hierarchy.flush(0x1000)
        assert requests == [MemoryRequest(0x1000, True)]

    def test_access_after_flush_misses_again(self):
        hierarchy = tiny()
        hierarchy.access(0x1000)
        hierarchy.flush(0x1000)
        requests = hierarchy.access(0x1000)
        assert MemoryRequest(0x1000, False) in requests

    def test_filter_rate(self):
        hierarchy = tiny()
        for _ in range(10):
            hierarchy.access(0x1000)
        assert hierarchy.dram_filter_rate > 0.8
