"""Tests for the address layout and workload archetypes."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMGeometry
from repro.cpu.layout import DRAMAddressLayout
from repro.cpu.workloads import (
    BlockedComputeWorkload,
    HotSpotWorkload,
    PointerChaseWorkload,
    StreamingWorkload,
    StridedWorkload,
    spec_mixed_load,
)


def layout():
    geometry = DRAMGeometry(num_banks=4, rows_per_bank=1024, rows_per_interval=8)
    return DRAMAddressLayout(geometry, row_bytes=8192)


class TestLayout:
    def test_capacity(self):
        assert layout().capacity_bytes == 4 * 1024 * 8192

    def test_column_bits_at_bottom(self):
        bank, row, column = layout().decode(100)
        assert (bank, row, column) == (0, 0, 100)

    def test_row_stripes_across_banks(self):
        l = layout()
        assert l.decode(8192)[0] == 1       # next 8 KB frame: bank 1
        assert l.decode(4 * 8192)[:2] == (0, 1)  # wraps to row 1 bank 0

    def test_encode_decode_roundtrip(self):
        l = layout()
        address = l.encode(2, 77, 123)
        assert l.decode(address) == (2, 77, 123)

    def test_bounds(self):
        l = layout()
        with pytest.raises(ValueError):
            l.decode(l.capacity_bytes)
        with pytest.raises(ValueError):
            l.encode(4, 0)
        with pytest.raises(ValueError):
            l.encode(0, 0, 8192)

    def test_row_neighbors_address(self):
        l = layout()
        address = l.encode(1, 10, 5)
        neighbors = l.row_neighbors_address(address)
        assert {l.decode(a)[:2] for a in neighbors} == {(1, 9), (1, 11)}

    @given(st.integers(min_value=0, max_value=4 * 1024 * 8192 - 1))
    @settings(max_examples=50)
    def test_roundtrip_property(self, address):
        l = layout()
        bank, row, column = l.decode(address)
        assert l.encode(bank, row, column) == address


class TestWorkloads:
    def take(self, workload, n=200):
        return list(itertools.islice(workload.accesses(), n))

    def test_streaming_is_sequential(self):
        workload = StreamingWorkload(0, 1 << 20, seed=1, element_bytes=8)
        addresses = [a for a, _ in self.take(workload, 50)]
        assert addresses == list(range(0, 400, 8))

    def test_strided_stride(self):
        workload = StridedWorkload(0, 1 << 20, seed=1, stride=4096)
        addresses = [a for a, _ in self.take(workload, 10)]
        assert addresses[1] - addresses[0] == 4096

    def test_pointer_chase_is_scattered(self):
        workload = PointerChaseWorkload(0, 1 << 20, seed=1)
        addresses = {a // 4096 for a, _ in self.take(workload, 200)}
        assert len(addresses) > 50  # many distinct pages

    def test_hotspot_concentrates(self):
        workload = HotSpotWorkload(0, 1 << 20, seed=1, hot_pages=4)
        from collections import Counter

        pages = Counter(a // 4096 for a, _ in self.take(workload, 2000))
        top4 = sum(count for _, count in pages.most_common(4))
        assert top4 / 2000 > 0.7

    def test_blocked_compute_reuses_block(self):
        workload = BlockedComputeWorkload(
            0, 1 << 20, seed=1, block_size=4096, passes_per_block=2
        )
        addresses = [a for a, _ in self.take(workload, 128)]
        assert len(set(addresses)) < len(addresses)  # reuse within block

    def test_all_accesses_stay_in_region(self):
        for workload in spec_mixed_load(region_size_per_core=1 << 18, seed=0):
            for address, _ in self.take(workload, 300):
                assert (
                    workload.region_start
                    <= address
                    < workload.region_start + workload.region_size
                )

    def test_mixed_load_has_four_distinct_archetypes(self):
        workloads = spec_mixed_load(region_size_per_core=1 << 18, seed=0)
        assert len(workloads) == 4
        assert len({type(w) for w in workloads}) == 4

    def test_deterministic_per_seed(self):
        a = HotSpotWorkload(0, 1 << 20, seed=7)
        b = HotSpotWorkload(0, 1 << 20, seed=7)
        assert self.take(a, 50) == self.take(b, 50)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StridedWorkload(0, 1 << 20, stride=0)
        with pytest.raises(ValueError):
            StreamingWorkload(0, 0)
