"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import Cache


def make(size=1024, ways=2, line=64):
    return Cache(size_bytes=size, ways=ways, line_size=line)


class TestGeometry:
    def test_sets_computed(self):
        assert make(size=1024, ways=2, line=64).sets == 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=3, line_size=64)

    def test_rejects_zero_line(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1024, ways=2, line_size=0)


class TestHitsAndMisses:
    def test_first_access_misses_then_hits(self):
        cache = make()
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit

    def test_same_line_hits(self):
        cache = make()
        cache.access(0x100)
        assert cache.access(0x13F).hit  # same 64 B line

    def test_adjacent_line_misses(self):
        cache = make()
        cache.access(0x100)
        assert not cache.access(0x140).hit

    def test_miss_reports_fill_address(self):
        cache = make()
        result = cache.access(0x123)
        assert result.fill == 0x100

    def test_stats(self):
        cache = make()
        cache.access(0)
        cache.access(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5


class TestEvictionAndWriteback:
    def test_lru_eviction(self):
        cache = make(size=256, ways=2, line=64)  # 2 sets
        # set 0 holds lines 0, 128, 256, ... (line % 2 == 0)
        cache.access(0)
        cache.access(128)
        cache.access(256)  # evicts line 0 (LRU)
        assert not cache.contains(0)
        assert cache.contains(128)
        assert cache.contains(256)

    def test_hit_refreshes_lru_position(self):
        cache = make(size=256, ways=2, line=64)
        cache.access(0)
        cache.access(128)
        cache.access(0)     # 128 becomes LRU
        cache.access(256)   # evicts 128
        assert cache.contains(0)
        assert not cache.contains(128)

    def test_dirty_eviction_writes_back(self):
        cache = make(size=256, ways=2, line=64)
        cache.access(0, is_write=True)
        cache.access(128)
        result = cache.access(256)
        assert result.writeback == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_silent(self):
        cache = make(size=256, ways=2, line=64)
        cache.access(0)
        cache.access(128)
        assert cache.access(256).writeback is None

    def test_write_hit_marks_dirty(self):
        cache = make(size=256, ways=2, line=64)
        cache.access(0)                 # clean fill
        cache.access(0, is_write=True)  # dirtied by the hit
        cache.access(128)
        assert cache.access(256).writeback == 0


class TestFlush:
    def test_flush_removes_line(self):
        cache = make()
        cache.access(0x100)
        cache.flush(0x100)
        assert not cache.contains(0x100)
        assert not cache.access(0x100).hit

    def test_flush_dirty_returns_writeback(self):
        cache = make()
        cache.access(0x100, is_write=True)
        assert cache.flush(0x100) == 0x100

    def test_flush_clean_returns_none(self):
        cache = make()
        cache.access(0x100)
        assert cache.flush(0x100) is None

    def test_flush_absent_is_noop(self):
        assert make().flush(0x100) is None


class TestInvariants:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=1 << 20),
        st.booleans(),
    ), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, accesses):
        cache = make(size=512, ways=2, line=64)
        for address, is_write in accesses:
            cache.access(address, is_write)
        assert cache.occupancy <= 8  # 8 lines total

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_rereference_always_hits(self, addresses):
        """The line just accessed is always resident (MRU can't be
        evicted by its own fill)."""
        cache = make(size=512, ways=2, line=64)
        for address in addresses:
            cache.access(address)
            assert cache.contains(address)
