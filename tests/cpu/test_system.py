"""Tests for the attacker kernel and the multi-core system model."""

import pytest

from repro.config import SimConfig
from repro.cpu.attacker import HammerKernel, pick_aggressor_rows
from repro.cpu.layout import DRAMAddressLayout
from repro.cpu.system import MultiCoreSystem
from repro.cpu.workloads import spec_mixed_load
from repro.traces.record import validate_trace


def paper_layout():
    return DRAMAddressLayout(SimConfig().geometry)


class TestPickAggressors:
    def test_double_sided(self):
        rows = pick_aggressor_rows(paper_layout(), victim_row=100, sided=2)
        assert rows == (99, 101)

    def test_single_sided(self):
        rows = pick_aggressor_rows(paper_layout(), victim_row=100, sided=1)
        assert rows == (101,)

    def test_rejects_edge_double(self):
        with pytest.raises(ValueError):
            pick_aggressor_rows(paper_layout(), victim_row=0, sided=2)

    def test_rejects_bad_sided(self):
        with pytest.raises(ValueError):
            pick_aggressor_rows(paper_layout(), victim_row=10, sided=3)


class TestHammerKernel:
    def test_every_step_reaches_dram(self):
        """clflush defeats the caches: each load misses."""
        layout = paper_layout()
        kernel = HammerKernel(layout, bank=0, aggressor_rows=(99, 101))
        reads = 0
        for _ in range(100):
            requests = kernel.step()
            reads += sum(1 for r in requests if not r.is_write)
        assert reads == 100

    def test_alternates_aggressors(self):
        layout = paper_layout()
        kernel = HammerKernel(layout, bank=0, aggressor_rows=(99, 101))
        rows = []
        for _ in range(4):
            for request in kernel.step():
                rows.append(layout.decode(request.address)[1])
        assert rows == [99, 101, 99, 101]

    def test_addresses_land_in_target_bank(self):
        layout = paper_layout()
        kernel = HammerKernel(layout, bank=2, aggressor_rows=(99,))
        for request in kernel.step():
            assert layout.decode(request.address)[0] == 2

    def test_rejects_empty_aggressors(self):
        with pytest.raises(ValueError):
            HammerKernel(paper_layout(), bank=0, aggressor_rows=())


class TestMultiCoreSystem:
    def make_system(self, attacker=True, intervals_hint=16):
        config = SimConfig()
        layout = DRAMAddressLayout(config.geometry)
        workloads = spec_mixed_load(region_size_per_core=1 << 22, seed=0)
        kernel = None
        if attacker:
            rows = pick_aggressor_rows(layout, victim_row=30_000, sided=2)
            kernel = HammerKernel(layout, bank=0, aggressor_rows=rows)
        return config, MultiCoreSystem(config, workloads, attacker=kernel)

    def test_trace_is_well_formed(self):
        config, system = self.make_system()
        trace = system.generate_trace(8).materialize()
        assert trace.count() > 0
        assert validate_trace(trace, act_to_act_ns=0) == []

    def test_attacker_activations_flagged(self):
        config, system = self.make_system()
        trace = system.generate_trace(8).materialize()
        attack_rows = {r.row for r in trace if r.is_attack}
        assert attack_rows == {29_999, 30_001}

    def test_attacker_rate_sustained(self):
        """The clflush kernel must not be filtered by the row buffer or
        starved by the bank activation cap."""
        config, system = self.make_system()
        trace = system.generate_trace(8).materialize()
        attack = sum(1 for r in trace if r.is_attack)
        assert attack >= 8 * 70  # ~80 requested per interval

    def test_no_attacker_no_flags(self):
        config, system = self.make_system(attacker=False)
        trace = system.generate_trace(4).materialize()
        assert not any(r.is_attack for r in trace)

    def test_row_buffer_filters_requests(self):
        config, system = self.make_system()
        system.generate_trace(8).materialize()
        assert 0.0 < system.row_buffer_hit_rate < 1.0

    def test_bank_cap_respected(self):
        config, system = self.make_system()
        trace = system.generate_trace(8).materialize()
        interval_ns = trace.meta.interval_ns
        from collections import Counter

        per_bucket = Counter(
            (r.time_ns // interval_ns, r.bank) for r in trace
        )
        assert max(per_bucket.values()) <= config.timing.max_acts_per_interval

    def test_end_to_end_with_mitigation(self):
        from repro.mitigations import make_factory
        from repro.sim.engine import run_simulation

        config, system = self.make_system()
        trace = system.generate_trace(8).materialize()
        result = run_simulation(config, trace, make_factory("LoLiPRoMi"))
        assert result.normal_activations == trace.count()
        assert result.attack_activations > 0
