"""Regenerate the golden-result fixtures.

    PYTHONPATH=src python tests/fixtures/make_golden.py

Writes ``golden_trace.txt`` (a small mixed workload in the text trace
format) and ``golden_results.json`` (the expected ``SimResult`` of every
registered technique plus the unmitigated baseline on that trace, and
the canonical per-cell campaign aggregates every engine must reproduce
on a small multi-seed campaign).

Only regenerate when simulation semantics intentionally change, and
call it out in the commit message: ``tests/sim/test_golden.py`` treats
any drift from these files as a regression.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import small_test_config
from repro.mitigations.registry import make_factory, technique_names
from repro.sim.engine import run_simulation
from repro.traces.mixer import paper_mixed_workload
from repro.traces.trace_io import load_trace, save_trace

FIXTURE_DIR = Path(__file__).resolve().parent
TRACE_PATH = FIXTURE_DIR / "golden_trace.txt"
RESULTS_PATH = FIXTURE_DIR / "golden_results.json"

#: fixture parameters (documented in the JSON header for humans)
SEED = 42
TOTAL_INTERVALS = 24
#: multi-seed campaign axis for the canonical per-cell aggregates
CAMPAIGN_SEEDS = (0, 1)


def golden_config():
    return small_test_config()


def golden_campaign(engine: str = "reference"):
    """The small campaign whose per-cell results are pinned as golden."""
    from repro.sim.parallel import run_campaign

    return run_campaign(
        golden_config(),
        total_intervals=TOTAL_INTERVALS,
        seeds=CAMPAIGN_SEEDS,
        include_unmitigated=True,
        workers=0,
        engine=engine,
    )


def main() -> None:
    config = golden_config()
    trace = paper_mixed_workload(
        config, total_intervals=TOTAL_INTERVALS, seed=SEED
    )
    count = save_trace(trace, TRACE_PATH)
    results = {}
    for technique in [None] + technique_names():
        factory = make_factory(technique) if technique else None
        result = run_simulation(
            config, load_trace(TRACE_PATH), factory, seed=SEED
        )
        results[technique or "none"] = result.as_dict()
    campaign = {
        technique: [result.as_dict() for result in aggregate.results]
        for technique, aggregate in golden_campaign().items()
    }
    payload = {
        "_comment": "regenerate with: PYTHONPATH=src python tests/fixtures/make_golden.py",
        "seed": SEED,
        "total_intervals": TOTAL_INTERVALS,
        "campaign_seeds": list(CAMPAIGN_SEEDS),
        "records": count,
        "results": results,
        "campaign": campaign,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {count} records to {TRACE_PATH.name} and "
          f"{len(results)} results to {RESULTS_PATH.name}")


if __name__ == "__main__":
    main()
