"""Regenerate the bundled ingest fixture traces.

Run from the repo root::

    python tests/fixtures/traces/make_fixtures.py

The fixtures are tiny on purpose: they exercise every ingest format
(gzipped DRAMSim command log, litex-rowhammer-tester payload dump,
native text) against the *paper-scale* default config, yet replay in
milliseconds, so the docs-as-tests harness and CI can run real
documented commands against them.  Output is deterministic --
re-running this script must be a no-op in git.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: default-geometry address layout: addr = row<<15 | bank<<13 | column
ROW_SHIFT, BANK_SHIFT = 15, 13


def dramsim_fixture() -> None:
    """A double-sided hammer pair on bank 1 amid benign bank traffic."""
    lines = ["# mini DRAMSim-style fixture: cycle,cmd,addr (1 cycle = 45 ns)"]
    cycle = 0
    for i in range(240):
        if i % 4 == 3:  # benign activations sweeping rows on bank 0
            row, bank = 5000 + i, 0
        else:  # the hammer pair around victim row 4097
            row, bank = (4096, 1) if i % 2 else (4098, 1)
        addr = (row << ROW_SHIFT) | (bank << BANK_SHIFT)
        lines.append(f"{cycle},ACT,0x{addr:x}")
        lines.append(f"{cycle + 20},RD,0x{addr:x}")  # ignored by ingest
        cycle += 45
    payload = ("\n".join(lines) + "\n").encode("ascii")
    # mtime=0 keeps the gzip container byte-stable across regenerations
    with open(HERE / "mini_dramsim.trace.gz", "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as zipped:
            zipped.write(payload)


def litex_fixture() -> None:
    """A payload-dump hammer loop in the tester's instruction format."""
    payload = {
        "timing": {"tick_ps": 2500},
        "instrs": [
            {"op": "ACT", "timeslice": 18, "rank": 0, "bank": 2,
             "addr": 7000},
            {"op": "PRE", "timeslice": 6},
            {"op": "ACT", "timeslice": 18, "rank": 0, "bank": 2,
             "addr": 7002},
            {"op": "PRE", "timeslice": 6},
            {"op": "JMP", "offset": 4, "count": 50},
            {"op": "REF", "timeslice": 140},
        ],
    }
    (HERE / "mini_payload.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="ascii"
    )


def native_fixture() -> None:
    """A native-format trace with explicit metadata and attack flags."""
    header = {"total_intervals": 2, "interval_ns": 7800, "num_banks": 4}
    lines = [f"#repro-trace:{json.dumps(header)}"]
    time_ns = 0
    for i in range(60):
        row, bank, attack = (
            (9000 + (i % 2) * 2, 3, 1) if i % 3 else (1234 + i, 0, 0)
        )
        lines.append(f"{time_ns},{bank},{row},{attack}")
        time_ns += 180
    (HERE / "mini_native.trace").write_text(
        "\n".join(lines) + "\n", encoding="ascii"
    )


if __name__ == "__main__":
    dramsim_fixture()
    litex_fixture()
    native_fixture()
    print("fixtures written to", HERE)
