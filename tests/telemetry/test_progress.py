"""Tests for the unified progress event plane (repro.telemetry.progress)."""

from repro.telemetry.progress import (
    ProgressDispatcher,
    ProgressEvent,
    adapt_legacy,
)


class TestProgressEvent:
    def test_fraction_and_complete(self):
        event = ProgressEvent(kind="parallel_map", done=3, total=4)
        assert event.fraction == 0.75
        assert not event.complete
        assert ProgressEvent(kind="x", done=4, total=4).complete
        assert ProgressEvent(kind="x", done=0, total=0).fraction is None

    def test_as_dict_carries_attrs(self):
        event = ProgressEvent(
            kind="adversary", done=8, total=64, unit="evaluations",
            attrs={"generation": 2},
        )
        data = event.as_dict()
        assert data["kind"] == "adversary"
        assert data["unit"] == "evaluations"
        assert data["attrs"] == {"generation": 2}


class TestAdaptLegacy:
    def test_wraps_done_total_callable(self):
        seen = []
        listener = adapt_legacy(lambda done, total: seen.append((done, total)))
        listener(ProgressEvent(kind="x", done=2, total=5))
        assert seen == [(2, 5)]


class TestProgressDispatcher:
    def test_fans_out_to_legacy_and_event_listeners(self):
        dispatcher = ProgressDispatcher("parallel_map", unit="items")
        legacy, events = [], []
        dispatcher.add_legacy(lambda done, total: legacy.append(done))
        dispatcher.add_listener(events.append)
        dispatcher.emit(1, 3)
        dispatcher.emit(2, 3, chunk=1)
        assert legacy == [1, 2]
        assert [e.done for e in events] == [1, 2]
        assert events[0].kind == "parallel_map"
        assert events[0].unit == "items"
        assert events[1].attrs == {"chunk": 1}

    def test_bool_reflects_listeners(self):
        dispatcher = ProgressDispatcher("x")
        assert not dispatcher
        dispatcher.add_legacy(None)  # ignored
        assert not dispatcher
        dispatcher.add_listener(lambda event: None)
        assert dispatcher

    def test_listener_exceptions_are_swallowed(self):
        dispatcher = ProgressDispatcher("x")
        seen = []

        def bad(event):
            raise RuntimeError("observer crashed")

        dispatcher.add_listener(bad)
        dispatcher.add_listener(seen.append)
        dispatcher.emit(1, 2)
        assert [e.done for e in seen] == [1]
