"""Run-manifest round trip, config hashing, and manifest diffing."""

from repro.config import SimConfig, small_test_config
from repro.sim.experiment import TechniqueAggregate
from repro.sim.metrics import SimResult
from repro.telemetry.manifest import (
    RunManifest,
    build_manifest,
    config_digest,
    diff_manifests,
    technique_summary,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import Profiler


def _aggregate(technique="PARA", seeds=(0, 1)):
    aggregate = TechniqueAggregate(technique=technique)
    for seed in seeds:
        result = SimResult(technique=technique, seed=seed, flip_threshold=100)
        result.normal_activations = 1000
        result.extra_activations = 10
        result.mitigation_triggers = 5
        result.wall_seconds = 0.25
        aggregate.results.append(result)
    return aggregate


class TestConfigDigest:
    def test_digest_is_stable(self):
        assert config_digest(SimConfig()) == config_digest(SimConfig())

    def test_digest_changes_with_any_parameter(self):
        base = small_test_config()
        tweaked = small_test_config(num_banks=base.geometry.num_banks + 1)
        assert config_digest(base) != config_digest(tweaked)


class TestRoundTrip:
    def test_write_then_load_preserves_every_field(self, tmp_path):
        manifest = build_manifest(
            small_test_config(),
            engine="fast",
            seeds=(0, 1, 2),
            comparison={"PARA": _aggregate()},
            metrics=MetricsRegistry(),
            total_intervals=48,
            extra={"command": "test"},
        )
        path = manifest.write(str(tmp_path / "out" / "manifest.json"))
        loaded = RunManifest.load(path)
        assert loaded.as_dict() == manifest.as_dict()

    def test_manifest_records_provenance(self):
        manifest = build_manifest(
            small_test_config(), engine="reference", seeds=(0,)
        )
        assert manifest.config_hash == config_digest(small_test_config())
        assert manifest.created_at  # ISO timestamp
        assert manifest.host["python"]
        # this repo is a git checkout, so the revision must resolve
        assert manifest.git_rev is not None

    def test_profiler_timings_embedded(self):
        profiler = Profiler()
        profiler.add("engine:replay", 1.5)
        manifest = build_manifest(
            small_test_config(), engine="fast", seeds=(0,), profiler=profiler
        )
        assert manifest.timings["engine:replay"]["seconds"] == 1.5


class TestTechniqueSummary:
    def test_summary_fields(self):
        summary = technique_summary(_aggregate(seeds=(0, 1)))
        assert summary["runs"] == 2
        assert summary["seeds"] == [0, 1]
        assert summary["mitigation_triggers"] == 10
        assert summary["wall_seconds"] == 0.5

    def test_single_seed_summary_has_zero_std(self):
        summary = technique_summary(_aggregate(seeds=(0,)))
        assert summary["overhead_std_pct"] == 0.0


class TestDiff:
    def _pair(self, **tweaks):
        config = small_test_config()
        a = build_manifest(config, engine="fast", seeds=(0,),
                           comparison={"PARA": _aggregate(seeds=(0,))})
        b = build_manifest(config, engine=tweaks.get("engine", "fast"),
                           seeds=(0,),
                           comparison={"PARA": _aggregate(seeds=(0,))})
        return a, b

    def test_identical_runs_diff_clean(self):
        a, b = self._pair()
        # created_at / wall_seconds differ, but both are volatile
        assert diff_manifests(a, b) == {}

    def test_engine_change_is_reported(self):
        a, b = self._pair(engine="reference")
        assert diff_manifests(a, b) == {"engine": ("fast", "reference")}

    def test_result_change_is_reported_with_dotted_path(self):
        a, b = self._pair()
        b.results["PARA"]["total_flips"] = 7
        differences = diff_manifests(a, b)
        assert differences == {"results.PARA.total_flips": (0, 7)}

    def test_missing_technique_reports_sentinel(self):
        a, b = self._pair()
        b.results["TWiCe"] = dict(b.results["PARA"])
        differences = diff_manifests(a, b)
        # the whole absent subtree is reported as one leaf difference
        assert "results.TWiCe" in differences
        assert differences["results.TWiCe"][0] == "<missing>"

    def test_custom_ignore_list(self):
        a, b = self._pair(engine="reference")
        assert diff_manifests(a, b, ignore=("engine", "created_at",
                                            "timings", "host",
                                            "wall_seconds")) == {}
