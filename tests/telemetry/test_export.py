"""Tests for metrics/span export (repro.telemetry.export).

The headline contract is losslessness: a registry exported to
Prometheus text format (or JSONL) and parsed back must be
**bit-identical** under ``as_dict()`` -- including counter label
ordering, saturation state, integer-vs-float bucket bounds, and
histogram min/max.  A Hypothesis property test pins it over arbitrary
registries.
"""

from hypothesis import given, settings, strategies as st

from repro.telemetry.export import (
    parse_jsonl,
    parse_prometheus,
    registry_from_prometheus,
    to_jsonl,
    to_prometheus,
    write_metrics_export,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("campaign.shards_completed").add(7)
    registry.counter("evictions", limit=10).add(25)  # saturates
    registry.counter("zeta.last").add(1)
    registry.counter("alpha.first").add(2)
    histogram = registry.histogram("acts_per_interval", bounds=(1, 8, 64))
    for value in (0, 3, 3, 9, 100):
        histogram.record(value)
    registry.histogram("empty", bounds=(0.5, 2.5))
    registry.add_time("simulate", 1.25)
    registry.add_time("simulate", 0.75)
    registry.add_time("trace", 0.5)
    return registry


def sample_summary():
    spans = SpanTracer(id_seed="cfg")
    with spans.span("campaign", engine="fast"):
        for seed in (0, 1):
            with spans.span("shard", seed=seed):
                pass
    return spans.summary()


class TestPrometheusRoundTrip:
    def test_bit_identical_as_dict(self):
        registry = sample_registry()
        text = to_prometheus(registry)
        assert registry_from_prometheus(text).as_dict() == registry.as_dict()

    def test_span_paths_survive(self):
        text = to_prometheus(sample_registry(), sample_summary())
        parsed = parse_prometheus(text)
        assert parsed["span_paths"] == {
            "campaign": 1, "campaign/shard": 2,
        }

    def test_buckets_are_cumulative_with_inf(self):
        text = to_prometheus(sample_registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_histogram_bucket")
            and 'name="acts_per_interval"' in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert 'le="+Inf"' in bucket_lines[-1]
        assert counts[-1] == 5

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter('tricky"name\\with\nstuff').add(3)
        back = registry_from_prometheus(to_prometheus(registry))
        assert back.as_dict() == registry.as_dict()

    def test_saturated_counter_state_survives(self):
        back = registry_from_prometheus(to_prometheus(sample_registry()))
        counter = back.counters["evictions"]
        assert counter.value == 10
        assert counter.limit == 10
        assert counter.saturated


class TestJsonlRoundTrip:
    def test_bit_identical_as_dict(self):
        registry = sample_registry()
        parsed = parse_jsonl(to_jsonl(registry))
        assert MetricsRegistry.from_dict(
            {k: parsed[k] for k in ("counters", "histograms", "timers")}
        ).as_dict() == registry.as_dict()

    def test_span_paths_match_prometheus(self):
        registry, summary = sample_registry(), sample_summary()
        assert parse_jsonl(to_jsonl(registry, summary))["span_paths"] == \
            parse_prometheus(to_prometheus(registry, summary))["span_paths"]


class TestWriteMetricsExport:
    def test_suffix_selects_format(self, tmp_path):
        registry = sample_registry()
        prom = write_metrics_export(tmp_path / "m.prom", registry)
        jsonl = write_metrics_export(tmp_path / "m.jsonl", registry)
        assert prom.read_text().startswith("# HELP")
        assert jsonl.read_text().startswith("{")
        assert registry_from_prometheus(prom.read_text()).as_dict() == \
            registry.as_dict()

    def test_creates_parent_directories(self, tmp_path):
        path = write_metrics_export(
            tmp_path / "nested" / "dir" / "m.prom", MetricsRegistry()
        )
        assert path.is_file()


# -- property test: arbitrary registries survive both round trips ------

metric_names = st.text(
    st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1, max_size=20,
).filter(lambda s: s.strip())

counters = st.lists(
    st.tuples(metric_names, st.integers(0, 10**9),
              st.one_of(st.none(), st.integers(1, 10**9))),
    max_size=6, unique_by=lambda c: c[0],
)

bounds = st.lists(
    st.one_of(st.integers(1, 10**6),
              st.floats(0.001, 10**6, allow_nan=False)),
    min_size=1, max_size=5, unique=True,
).map(sorted)

histograms = st.lists(
    st.tuples(metric_names, bounds,
              st.lists(st.one_of(st.integers(0, 10**7),
                                 st.floats(0, 10**7, allow_nan=False)),
                       max_size=8)),
    max_size=4, unique_by=lambda h: h[0],
)

timers = st.lists(
    st.tuples(metric_names, st.floats(0, 10**4, allow_nan=False)),
    max_size=4, unique_by=lambda t: t[0],
)


def build_registry(counter_specs, histogram_specs, timer_specs):
    registry = MetricsRegistry()
    for name, value, limit in counter_specs:
        registry.counter(name, limit=limit).add(value)
    for name, histogram_bounds, observations in histogram_specs:
        histogram = registry.histogram(name, bounds=histogram_bounds)
        for value in observations:
            histogram.record(value)
    for name, seconds in timer_specs:
        registry.add_time(name, seconds)
    return registry


@settings(max_examples=60, deadline=None)
@given(counter_specs=counters, histogram_specs=histograms,
       timer_specs=timers)
def test_prometheus_round_trip_property(
    counter_specs, histogram_specs, timer_specs
):
    registry = build_registry(counter_specs, histogram_specs, timer_specs)
    back = registry_from_prometheus(to_prometheus(registry))
    assert back.as_dict() == registry.as_dict()


@settings(max_examples=60, deadline=None)
@given(counter_specs=counters, histogram_specs=histograms,
       timer_specs=timers)
def test_jsonl_round_trip_property(
    counter_specs, histogram_specs, timer_specs
):
    registry = build_registry(counter_specs, histogram_specs, timer_specs)
    parsed = parse_jsonl(to_jsonl(registry))
    back = MetricsRegistry.from_dict(
        {k: parsed[k] for k in ("counters", "histograms", "timers")}
    )
    assert back.as_dict() == registry.as_dict()
