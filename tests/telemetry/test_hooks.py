"""EngineTelemetry hook-bundle semantics (delta derivation, gating)."""

from repro.telemetry import events as ev
from repro.telemetry.hooks import EngineTelemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NullTracer, RecordingTracer


class TestCreate:
    def test_all_off_collapses_to_none(self):
        assert EngineTelemetry.create(None, None) is None

    def test_null_tracer_is_treated_as_none(self):
        assert EngineTelemetry.create(NullTracer(), None) is None

    def test_metrics_alone_enables(self):
        tele = EngineTelemetry.create(None, MetricsRegistry())
        assert tele is not None
        assert tele.tracer is None

    def test_tracer_alone_enables(self):
        tele = EngineTelemetry.create(RecordingTracer(), None)
        assert tele is not None
        assert tele.metrics is None


class TestIntervalDeltas:
    def test_running_totals_become_per_interval_deltas(self):
        metrics = MetricsRegistry()
        tracer = RecordingTracer()
        tele = EngineTelemetry.create(tracer, metrics)
        tele.on_interval(0, 1000, 10, 2)
        tele.on_interval(1, 2000, 25, 2)
        assert metrics.counters["activations"].value == 25
        batches = tracer.of_kind(ev.ACTIVATION_BATCH)
        assert [event["count"] for event in batches] == [10, 15]
        assert [event["attack_count"] for event in batches] == [2, 0]

    def test_trigger_counts_reset_per_interval(self):
        metrics = MetricsRegistry()
        tele = EngineTelemetry.create(None, metrics)
        tele.on_trigger(0, 7, 0, "ActivateNeighbors")
        tele.on_trigger(0, 8, 0, "ActivateNeighbors")
        tele.on_interval(0, 1000, 5, 0)
        tele.on_interval(1, 2000, 5, 0)
        histogram = metrics.histograms["triggers_per_interval"]
        # one interval saw 2 triggers, one saw 0
        assert histogram.count == 2
        assert histogram.total == 2.0

    def test_empty_interval_emits_no_activation_batch(self):
        tracer = RecordingTracer()
        tele = EngineTelemetry.create(tracer, None)
        tele.on_interval(0, 1000, 0, 0)
        assert tracer.kinds() == [ev.INTERVAL_ROLLOVER]

    def test_finish_flushes_the_tail(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        tele = EngineTelemetry.create(tracer, metrics)
        tele.on_interval(0, 1000, 10, 0)
        tele.finish(17, 3)
        assert metrics.counters["activations"].value == 17
        tail = tracer.of_kind(ev.ACTIVATION_BATCH)[-1]
        assert tail["count"] == 7
        assert tail["interval"] == -1

    def test_interval_skip_records_zero_trigger_intervals(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        tele = EngineTelemetry.create(tracer, metrics)
        tele.on_interval_skip(3, 12, 120_000)
        assert metrics.counters["intervals"].value == 10
        assert metrics.histograms["triggers_per_interval"].count == 10
        (rollover,) = tracer.of_kind(ev.INTERVAL_ROLLOVER)
        assert rollover["skipped"] == 10
        assert rollover["interval"] == 12

    def test_interval_skip_of_nothing_is_silent(self):
        tracer = RecordingTracer()
        tele = EngineTelemetry.create(tracer, None)
        tele.on_interval_skip(5, 4, 0)
        assert len(tracer) == 0

    def test_occupancy_histogram_skips_stateless_banks(self):
        metrics = MetricsRegistry()
        tele = EngineTelemetry.create(None, metrics)
        tele.on_interval(0, 1000, 1, 0, occupancy=[3, None, 5])
        assert metrics.histograms["table_occupancy"].count == 2

    def test_time_only_moves_forward(self):
        tele = EngineTelemetry.create(RecordingTracer(), None)
        tele.now = 500
        tele.on_interval(0, 100, 1, 0)  # stale rollover timestamp
        assert tele.now == 500


class TestTechniqueHooks:
    def test_history_hit_emits_event_and_counter(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        tele = EngineTelemetry.create(tracer, metrics)
        tele.on_trigger_weight(0, 7, 3, 128, hit=True)
        tele.on_trigger_weight(0, 9, 3, 64, hit=False)
        assert metrics.counters["history_hits"].value == 1
        assert metrics.histograms["trigger_weight"].count == 2
        (hit,) = tracer.of_kind(ev.HISTORY_HIT)
        assert hit["weight"] == 128

    def test_rng_block_accounting(self):
        metrics = MetricsRegistry()
        tele = EngineTelemetry.create(None, metrics)
        tele.on_rng_block(0, 4096)
        tele.on_rng_block(1, 256)
        assert metrics.counters["rng_blocks"].value == 2
        assert metrics.counters["rng_draws"].value == 4352
