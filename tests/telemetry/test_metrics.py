"""Counter / histogram / registry semantics.

The histogram bucket-edge behaviour and the counter saturation model
are load-bearing (the run manifest embeds them), so their edge cases
are pinned here exactly.
"""

import pytest

from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("acts")
        assert counter.value == 0
        counter.add()
        counter.add(41)
        assert counter.value == 42

    def test_rejects_negative_amounts(self):
        counter = Counter("acts")
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_saturates_at_limit(self):
        counter = Counter("hw", limit=10)
        counter.add(7)
        assert not counter.saturated
        counter.add(7)
        assert counter.value == 10
        assert counter.saturated

    def test_exactly_reaching_limit_does_not_saturate(self):
        counter = Counter("hw", limit=10)
        counter.add(10)
        assert counter.value == 10
        assert not counter.saturated

    def test_saturated_counter_stays_clamped(self):
        counter = Counter("hw", limit=5)
        counter.add(100)
        counter.add(100)
        assert counter.value == 5
        assert counter.saturated

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Counter("hw", limit=-1)

    def test_as_dict_includes_limit_only_when_set(self):
        assert Counter("a").as_dict() == {"value": 0}
        limited = Counter("b", limit=3)
        limited.add(4)
        assert limited.as_dict() == {"value": 3, "limit": 3, "saturated": True}


class TestHistogram:
    def test_bounds_must_be_non_empty_and_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (4, 2, 1))

    def test_value_on_edge_lands_in_closing_bucket(self):
        # bucket i counts bounds[i-1] < v <= bounds[i]: the upper edge
        # is inclusive, so 2 lands in the bucket that 2 closes
        histogram = Histogram("h", (1, 2, 4))
        histogram.record(2)
        assert histogram.counts == [0, 1, 0, 0]

    def test_value_above_last_bound_lands_in_overflow(self):
        histogram = Histogram("h", (1, 2, 4))
        histogram.record(5)
        assert histogram.counts == [0, 0, 0, 1]

    def test_value_below_first_bound_lands_in_first_bucket(self):
        histogram = Histogram("h", (1, 2, 4))
        histogram.record(0)
        assert histogram.counts == [1, 0, 0, 0]

    def test_record_many_is_equivalent_to_repeated_record(self):
        many = Histogram("h", (0, 1, 2, 4))
        loop = Histogram("h", (0, 1, 2, 4))
        many.record_many(0, 1000)
        many.record_many(3, 2)
        for _ in range(1000):
            loop.record(0)
        loop.record(3)
        loop.record(3)
        assert many.counts == loop.counts
        assert many.count == loop.count
        assert many.total == loop.total
        assert (many.min, many.max) == (loop.min, loop.max)

    def test_record_many_non_positive_times_is_a_no_op(self):
        histogram = Histogram("h", (1,))
        histogram.record_many(1, 0)
        histogram.record_many(1, -3)
        assert histogram.count == 0
        assert histogram.min is None

    def test_summary_statistics(self):
        histogram = Histogram("h", (10, 100))
        for value in (2, 8, 50):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.total == 60.0
        assert histogram.mean == 20.0
        assert histogram.min == 2
        assert histogram.max == 50

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", (1,)).mean == 0.0


class TestMetricsRegistry:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 2, 3))

    def test_merge_folds_counters_histograms_and_timers(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("n").add(2)
        b.counter("n").add(3)
        b.counter("only_b").add(1)
        a.histogram("h", (1, 2)).record(1)
        b.histogram("h", (1, 2)).record(5)
        a.add_time("phase", 1.0)
        b.add_time("phase", 2.0)
        a.merge(b)
        assert a.counters["n"].value == 5
        assert a.counters["only_b"].value == 1
        assert a.histograms["h"].counts == [1, 0, 1]
        assert a.histograms["h"].min == 1
        assert a.histograms["h"].max == 5
        assert a.timers["phase"] == {"seconds": 3.0, "calls": 2}

    def test_merge_into_empty_registry(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.histogram("h", (1,)).record(0)
        a.merge(b)
        assert a.histograms["h"].count == 1
        assert a.histograms["h"].min == 0

    def test_as_dict_is_json_ready_and_sorted(self):
        import json

        registry = MetricsRegistry()
        registry.counter("z").add(1)
        registry.counter("a").add(2)
        registry.histogram("h", (1,)).record(1)
        registry.add_time("t", 0.5)
        snapshot = registry.as_dict()
        assert list(snapshot["counters"]) == ["a", "z"]
        json.dumps(snapshot)  # must not raise
