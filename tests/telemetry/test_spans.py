"""Tests for hierarchical span recording (repro.telemetry.spans)."""

from repro.telemetry.spans import Span, SpanTracer, span_id_for, span_of


def small_tree(seed="cfg"):
    tracer = SpanTracer(id_seed=seed)
    with tracer.span("campaign", engine="fast"):
        with tracer.span("shard", technique="PARA", seed=0):
            with tracer.span("trace"):
                pass
            with tracer.span("simulate"):
                pass
        with tracer.span("shard", technique="PARA", seed=1):
            pass
    return tracer


class TestSpanIdentity:
    def test_ids_are_deterministic_across_runs(self):
        first = small_tree()
        second = small_tree()
        assert [s.span_id for s in first.spans] == \
            [s.span_id for s in second.spans]

    def test_ids_depend_on_seed_path_and_ordinal(self):
        assert span_id_for("a", "x", 0) != span_id_for("b", "x", 0)
        assert span_id_for("a", "x", 0) != span_id_for("a", "y", 0)
        assert span_id_for("a", "x", 0) != span_id_for("a", "x", 1)

    def test_repeated_paths_get_distinct_ids(self):
        tracer = small_tree()
        shards = [s for s in tracer.spans if s.name == "shard"]
        assert len(shards) == 2
        assert shards[0].span_id != shards[1].span_id
        assert shards[0].path == shards[1].path == "campaign/shard"

    def test_ids_never_derive_from_clocks(self):
        tracer = small_tree()
        for span in tracer.spans:
            assert span.span_id == span_id_for(
                tracer.id_seed, span.path,
                [s.span_id for s in tracer.spans
                 if s.path == span.path].index(span.span_id),
            )


class TestRecording:
    def test_paths_and_parentage(self):
        tracer = small_tree()
        by_path = {}
        for span in tracer.spans:
            by_path.setdefault(span.path, span)
        root = by_path["campaign"]
        assert root.parent_id is None
        assert by_path["campaign/shard"].parent_id == root.span_id
        assert by_path["campaign/shard/trace"].parent_id == \
            by_path["campaign/shard"].span_id

    def test_timing_is_populated(self):
        tracer = small_tree()
        for span in tracer.spans:
            assert span.finished
            assert span.wall_seconds >= 0.0
            assert span.cpu_seconds >= 0.0

    def test_start_finish_without_with_block(self):
        tracer = SpanTracer(id_seed="x")
        root = tracer.start("campaign")
        with tracer.span("shard"):
            pass
        finished = tracer.finish()
        assert finished is root
        assert root.finished
        assert tracer.current is None

    def test_set_attributes_after_open(self):
        tracer = SpanTracer(id_seed="x")
        with tracer.span("work") as span:
            span.set_attributes(items=3)
        assert tracer.spans[0].attributes == {"items": 3}

    def test_disabled_tracer_is_a_noop(self):
        tracer = SpanTracer(id_seed="x", enabled=False)
        with tracer.span("campaign") as span:
            assert span is None
        assert tracer.start("x") is None
        assert tracer.finish() is None
        assert len(tracer) == 0
        assert tracer.adopt(small_tree().as_dict()) == 0

    def test_span_of_accepts_none_and_disabled(self):
        with span_of(None, "x"):
            pass
        with span_of(SpanTracer(enabled=False), "x"):
            pass
        tracer = SpanTracer(id_seed="s")
        with span_of(tracer, "x", k=1):
            pass
        assert tracer.spans[0].attributes == {"k": 1}


class TestSerialisation:
    def test_round_trip_preserves_everything(self):
        tracer = small_tree()
        clone = SpanTracer.from_dict(tracer.as_dict())
        assert clone.as_dict() == tracer.as_dict()

    def test_span_from_dict_defaults(self):
        span = Span.from_dict({"name": "x", "span_id": "abc"})
        assert span.path == "x"
        assert span.parent_id is None
        assert not span.finished


class TestAdopt:
    def test_reparents_remote_roots_and_prefixes_paths(self):
        worker = SpanTracer(id_seed="cfg|PARA__s0")
        with worker.span("shard", technique="PARA", seed=0):
            with worker.span("simulate"):
                pass
        runner = SpanTracer(id_seed="cfg")
        root = runner.start("campaign")
        adopted = runner.adopt(worker.as_dict())
        runner.finish()
        assert adopted == 2
        shard = next(s for s in runner.spans if s.name == "shard")
        simulate = next(s for s in runner.spans if s.name == "simulate")
        assert shard.parent_id == root.span_id
        assert shard.path == "campaign/shard"
        assert simulate.path == "campaign/shard/simulate"
        # ids survive adoption verbatim: they carry the worker's seed
        assert shard.span_id == worker.spans[0].span_id
        # the child kept its original parent link
        assert simulate.parent_id == shard.span_id

    def test_explicit_parent_works_after_finish(self):
        worker = SpanTracer(id_seed="w")
        with worker.span("shard"):
            pass
        runner = SpanTracer(id_seed="r")
        root = runner.start("campaign")
        runner.finish()
        runner.adopt(worker.as_dict(), parent=root)
        assert runner.spans[-1].parent_id == root.span_id

    def test_adopt_none_or_empty_is_zero(self):
        runner = SpanTracer(id_seed="r")
        assert runner.adopt(None) == 0
        assert runner.adopt({"spans": []}) == 0


class TestSummary:
    def test_summary_has_no_clock_readings(self):
        summary = small_tree().summary()
        flat = repr(summary)
        assert "mono" not in flat and "cpu" not in flat
        assert summary["paths"]["campaign/shard"] == {
            "count": 2, "attribute_keys": ["seed", "technique"],
        }

    def test_summary_is_adoption_order_independent(self):
        workers = []
        for seed in (0, 1, 2):
            worker = SpanTracer(id_seed=f"cfg|PARA__s{seed}")
            with worker.span("shard", technique="PARA", seed=seed):
                with worker.span("simulate"):
                    pass
            workers.append(worker.as_dict())

        def merged(order):
            runner = SpanTracer(id_seed="cfg")
            root = runner.start("campaign")
            for data in order:
                runner.adopt(data, parent=root)
            runner.finish()
            return runner.summary()

        assert merged(workers) == merged(list(reversed(workers)))

    def test_timing_report_totals_per_path(self):
        report = small_tree().timing_report()
        entry = next(e for e in report if e["path"] == "campaign/shard")
        assert entry["count"] == 2
        assert entry["wall_seconds"] >= 0.0
