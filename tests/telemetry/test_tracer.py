"""Tracer implementations and the JSONL round trip."""

import pytest

from repro.telemetry import events as ev
from repro.telemetry.tracer import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_jsonl_events,
)


class TestNullTracer:
    def test_is_disabled(self):
        assert NullTracer.enabled is False

    def test_satisfies_the_protocol(self):
        assert isinstance(NullTracer(), Tracer)


class TestRecordingTracer:
    def test_records_in_emission_order(self):
        tracer = RecordingTracer()
        tracer.emit(ev.trigger(10, 0, 0, 7, "ActivateNeighbors"))
        tracer.emit(ev.interval_rollover(20, 1, 5, 1))
        assert tracer.kinds() == [ev.TRIGGER, ev.INTERVAL_ROLLOVER]
        assert len(tracer) == 2

    def test_of_kind_filters(self):
        tracer = RecordingTracer()
        tracer.emit(ev.trigger(10, 0, 0, 7, "ActivateNeighbors"))
        tracer.emit(ev.rng_block(10, 0, 4096))
        (block,) = tracer.of_kind(ev.RNG_BLOCK)
        assert block["count"] == 4096


class TestJsonlTracer:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        emitted = [
            ev.activation_batch(100, 0, 50, 10),
            ev.trigger(150, 0, 1, 42, "RefreshRow"),
            ev.mitigating_refresh(160, 0, 1, 41, 1, False),
        ]
        with JsonlTracer(path) as tracer:
            for event in emitted:
                tracer.emit(event)
            assert tracer.events_written == 3
        assert read_jsonl_events(path) == emitted

    def test_one_compact_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.emit(ev.rng_block(0, 0, 256))
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert " " not in lines[0]

    def test_close_is_idempotent(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "events.jsonl"))
        tracer.close()
        tracer.close()

    def test_emit_after_close_raises(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "events.jsonl"))
        tracer.close()
        with pytest.raises(ValueError):
            tracer.emit(ev.rng_block(0, 0, 256))


def test_event_kind_constants_are_complete():
    assert set(ev.EVENT_KINDS) == {
        "activation-batch", "trigger", "mitigating-refresh",
        "history-hit", "history-evict", "interval-rollover", "rng-block",
    }
