"""Tests for the filesystem status bus (repro.telemetry.statusbus)."""

import json
import time

import pytest

from repro.telemetry.statusbus import (
    CampaignSnapshot,
    StatusBus,
    WorkerHeartbeat,
    write_json_atomic,
)


class TestWriteJsonAtomic:
    def test_writes_canonical_json(self, tmp_path):
        path = tmp_path / "deep" / "record.json"
        write_json_atomic(path, {"b": 2, "a": 1})
        assert json.loads(path.read_text()) == {"a": 1, "b": 2}

    def test_leaves_no_temp_debris(self, tmp_path):
        path = tmp_path / "record.json"
        write_json_atomic(path, {"x": 1})
        write_json_atomic(path, {"x": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["record.json"]
        assert json.loads(path.read_text()) == {"x": 2}

    def test_unserialisable_payload_leaves_no_file(self, tmp_path):
        path = tmp_path / "record.json"
        with pytest.raises(TypeError):
            write_json_atomic(path, {"x": object()})
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestHeartbeats:
    def test_beat_round_trips(self, tmp_path):
        bus = StatusBus(tmp_path / "status")
        sent = bus.beat("PARA__s0", 1, 4, retries=2, degraded=True,
                        engine="fused")
        (read,) = bus.read_heartbeats()
        assert read.as_dict() == sent.as_dict()
        assert read.attrs == {"engine": "fused"}

    def test_worker_names_are_sanitised_for_paths(self, tmp_path):
        bus = StatusBus(tmp_path / "status")
        bus.beat("evil/../name with spaces", 0, 1)
        (path,) = bus.workers_dir.glob("*.json")
        assert path.parent == bus.workers_dir
        assert "/" not in path.stem and " " not in path.stem
        (read,) = bus.read_heartbeats()
        assert read.worker == "evil/../name with spaces"

    def test_torn_records_are_skipped_not_raised(self, tmp_path):
        bus = StatusBus(tmp_path / "status")
        bus.beat("good", 1, 1)
        bus.workers_dir.joinpath("torn.json").write_text("{not json")
        bus.workers_dir.joinpath("foreign.json").write_text('{"hi": 1}')
        (read,) = bus.read_heartbeats()
        assert read.worker == "good"

    def test_clear_workers(self, tmp_path):
        bus = StatusBus(tmp_path / "status")
        bus.beat("a", 0, 1)
        bus.beat("b", 0, 1)
        bus.clear_workers()
        assert bus.read_heartbeats() == []


class TestStaleness:
    def test_silent_running_worker_is_stale(self, tmp_path):
        bus = StatusBus(tmp_path / "status", stale_after=5.0)
        now = time.monotonic()
        bus.publish_heartbeat(WorkerHeartbeat(
            worker="hung", cells_done=0, cells_total=1, mono=now - 60.0,
        ))
        bus.publish_heartbeat(WorkerHeartbeat(
            worker="live", cells_done=0, cells_total=1, mono=now,
        ))
        assert [b.worker for b in bus.stale_workers(now=now)] == ["hung"]

    def test_done_workers_never_go_stale(self, tmp_path):
        bus = StatusBus(tmp_path / "status", stale_after=5.0)
        now = time.monotonic()
        bus.publish_heartbeat(WorkerHeartbeat(
            worker="finished", cells_done=1, cells_total=1,
            mono=now - 60.0, phase="done",
        ))
        assert bus.stale_workers(now=now) == []

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="stale_after"):
            StatusBus(tmp_path, stale_after=0.0)


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        bus = StatusBus(tmp_path / "status")
        snapshot = CampaignSnapshot(
            done=3, total=8, degraded=1, retries=2, stale=1,
            started_mono=10.0, mono=16.0,
        )
        bus.publish_snapshot(snapshot)
        assert bus.read_snapshot().as_dict() == snapshot.as_dict()

    def test_missing_or_torn_snapshot_reads_none(self, tmp_path):
        bus = StatusBus(tmp_path / "status")
        assert bus.read_snapshot() is None
        bus.root.mkdir(parents=True)
        bus.snapshot_path.write_text("{oops")
        assert bus.read_snapshot() is None

    def test_throughput_and_eta(self):
        snapshot = CampaignSnapshot(
            done=3, total=9, started_mono=0.0, mono=6.0
        )
        assert snapshot.throughput == pytest.approx(0.5)
        assert snapshot.eta_seconds == pytest.approx(12.0)

    def test_no_estimate_without_progress_or_elapsed(self):
        assert CampaignSnapshot(done=0, total=4, started_mono=0.0,
                                mono=5.0).throughput is None
        assert CampaignSnapshot(done=2, total=4, started_mono=5.0,
                                mono=5.0).eta_seconds is None
        complete = CampaignSnapshot(done=4, total=4, started_mono=0.0,
                                    mono=2.0, complete=True)
        assert complete.eta_seconds is None


class TestLayout:
    def test_for_checkpoint_nests_under_status(self, tmp_path):
        bus = StatusBus.for_checkpoint(tmp_path / "ckpt")
        assert bus.root == tmp_path / "ckpt" / "status"
        assert bus.snapshot_path.name == "campaign.json"
        assert not bus.exists
        bus.beat("w", 0, 1)
        assert bus.exists
