"""Profiler section accumulation and the null fast path."""

from contextlib import nullcontext

from repro.telemetry.profiler import Profiler, section_of


class TestProfiler:
    def test_sections_accumulate_seconds_and_calls(self):
        profiler = Profiler()
        profiler.add("replay", 1.0)
        profiler.add("replay", 0.5)
        profiler.add("setup", 0.25)
        assert profiler.sections["replay"] == {"seconds": 1.5, "calls": 2}
        assert profiler.total_seconds == 1.75

    def test_section_context_manager_times_the_block(self):
        profiler = Profiler()
        with profiler.section("work"):
            pass
        entry = profiler.sections["work"]
        assert entry["calls"] == 1
        assert entry["seconds"] >= 0.0

    def test_report_lists_every_section(self):
        profiler = Profiler()
        profiler.add("engine:replay", 2.0)
        profiler.add("engine:setup", 1.0)
        report = profiler.report()
        assert "engine:replay" in report
        assert "engine:setup" in report
        assert "total" in report

    def test_as_dict_copies(self):
        profiler = Profiler()
        profiler.add("a", 1.0)
        snapshot = profiler.as_dict()
        snapshot["a"]["seconds"] = 99.0
        assert profiler.sections["a"]["seconds"] == 1.0


class TestSectionOf:
    def test_none_profiler_yields_nullcontext(self):
        assert isinstance(section_of(None, "x"), nullcontext)

    def test_real_profiler_records(self):
        profiler = Profiler()
        with section_of(profiler, "x"):
            pass
        assert profiler.sections["x"]["calls"] == 1
