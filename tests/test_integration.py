"""End-to-end integration tests: the paper's claims at test scale.

These drive the public API the way the benchmarks do, on a shrunk but
dynamics-preserving geometry (512-interval windows, threshold scaled to
keep the protection-margin regime of DESIGN.md).
"""

import pytest

from repro import (
    SimConfig,
    compare_techniques,
    default_trace_factory,
    flooding_experiment,
    paper_mixed_workload,
    run_simulation,
    small_test_config,
)
from repro.dram.refresh import all_policies
from repro.mitigations import make_factory
from repro.sim.experiment import run_technique


@pytest.fixture(scope="module")
def medium_config():
    return small_test_config(
        rows_per_bank=4096, num_banks=2, flip_threshold=30_000
    )


@pytest.fixture(scope="module")
def medium_comparison(medium_config):
    # two full windows: the sustained double-sided attack accumulates a
    # whole refresh-to-refresh stretch (512 intervals x 70 acts = 35.8 K
    # disturbances > the 30 K threshold) on the unmitigated device
    factory = default_trace_factory(
        medium_config, total_intervals=2 * medium_config.geometry.refint
    )
    return compare_techniques(
        medium_config,
        factory,
        seeds=(0, 1),
        include_unmitigated=True,
    )


class TestReliabilityClaim:
    """Section IV: attacks succeed unmitigated, never with mitigation."""

    def test_unmitigated_attack_succeeds(self, medium_comparison):
        assert medium_comparison["none"].total_flips > 0

    def test_no_technique_lets_the_attack_through(self, medium_comparison):
        for name, aggregate in medium_comparison.items():
            if name == "none":
                continue
            assert aggregate.total_flips == 0, name


class TestOverheadShape:
    """Fig. 4 / Table III orderings at test scale."""

    def test_tivapromi_cheaper_than_static_probabilistic(self, medium_comparison):
        para = medium_comparison["PARA"].overhead_mean
        for name in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
            assert medium_comparison[name].overhead_mean < para, name

    def test_counters_cheaper_than_tivapromi(self, medium_comparison):
        for counter in ("TWiCe", "CRA"):
            for variant in ("LiPRoMi", "LoPRoMi"):
                assert (
                    medium_comparison[counter].overhead_mean
                    < medium_comparison[variant].overhead_mean
                )

    def test_prohit_most_expensive_probabilistic(self, medium_comparison):
        prohit = medium_comparison["ProHit"].overhead_mean
        assert prohit > medium_comparison["PARA"].overhead_mean

    def test_linear_cheapest_tivapromi_log_most_expensive(self, medium_comparison):
        li = medium_comparison["LiPRoMi"].overhead_mean
        lo = medium_comparison["LoPRoMi"].overhead_mean
        assert li < lo

    def test_counter_techniques_have_zero_fpr(self, medium_comparison):
        assert medium_comparison["TWiCe"].fpr_mean < 0.01
        assert medium_comparison["CRA"].fpr_mean < 0.01

    def test_storage_ordering(self, medium_comparison):
        sizes = {
            name: aggregate.table_bytes
            for name, aggregate in medium_comparison.items()
            if name != "none"
        }
        assert sizes["PARA"] == 0
        assert sizes["LiPRoMi"] < sizes["CaPRoMi"] < sizes["TWiCe"] < sizes["CRA"]


class TestRefreshPolicyRobustness:
    """Section IV: TiVaPRoMi's performance is stable across the four
    refresh policies even though Eq. 1 assumes the sequential mapping."""

    def test_overhead_stable_across_policies(self, medium_config):
        factory = default_trace_factory(medium_config, total_intervals=256)
        overheads = []
        for policy in all_policies(medium_config.geometry, seed=0):
            aggregate = run_technique(
                medium_config,
                "LoLiPRoMi",
                factory,
                seeds=(0,),
                policy_factory=lambda seed, p=policy: p,
            )
            overheads.append(aggregate.overhead_mean)
            assert aggregate.total_flips == 0
        spread = max(overheads) - min(overheads)
        assert spread < max(overheads)  # no policy doubles the overhead


class TestFloodingClaim:
    """Section IV: LiPRoMi reacts to a worst-phase flood much later
    than the log-weighted variants; all react before 69 K activations
    scaled to the window."""

    def test_li_reacts_later_than_lo_paired(self):
        """Deterministic version of the ordering: with a shared random
        stream, LoPRoMi's per-activation probability dominates
        LiPRoMi's (Eq. 2 >= Eq. 1), so on the same draw sequence the
        log variant can never trigger later."""
        import random

        from repro.core.tivapromi import LiPRoMi, LoPRoMi

        config = small_test_config(rows_per_bank=4096)
        for seed in range(6):
            li = LiPRoMi(config, seed=seed)
            lo = LoPRoMi(config, seed=seed)
            li._rng = random.Random(seed)
            lo._rng = random.Random(seed)
            first = {}
            for variant_name, variant in (("li", li), ("lo", lo)):
                acts = 0
                for interval in range(512):
                    for _ in range(165):
                        acts += 1
                        if variant.on_activation(1, interval):
                            first[variant_name] = acts
                            break
                    if variant_name in first:
                        break
            assert first["lo"] <= first["li"], seed

    def test_flood_caught_well_before_safety_margin(self):
        config = small_test_config(rows_per_bank=4096)
        for technique in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
            outcome = flooding_experiment(
                config, technique, start_weight=0, seeds=range(5), max_windows=2
            )
            assert outcome.median_acts is not None, technique
            assert outcome.below_safety_margin, technique

    def test_blind_flood_caught_quickly(self):
        config = small_test_config(rows_per_bank=4096)
        mid = flooding_experiment(
            config, "LoPRoMi", start_weight=256, seeds=range(5), max_windows=1
        )
        assert mid.median_acts is not None
        # at start weight refint/2 the probability is ~half the PARA
        # level, so the flood is caught within a few thousand acts
        assert mid.median_acts < 20_000


class TestPaperConfigSmoke:
    """One short paper-geometry run keeps full scale exercised."""

    def test_quarter_window_runs(self):
        config = SimConfig(geometry=SimConfig().geometry)
        trace = paper_mixed_workload(config, total_intervals=64, seed=0)
        result = run_simulation(config, trace, make_factory("LoLiPRoMi"), seed=0)
        assert result.normal_activations > 0
        assert result.intervals_simulated == 64
