"""Tests for Bank and DRAMDevice state and interval progression."""

import pytest

from repro.config import small_test_config
from repro.dram.bank import Bank
from repro.dram.device import DRAMDevice
from repro.dram.refresh import RandomRefresh, SequentialRefresh


class TestBank:
    def make(self):
        config = small_test_config()
        return Bank(geometry=config.geometry, flip_threshold=50, index=0)

    def test_activation_bookkeeping(self):
        bank = self.make()
        bank.activate(10)
        bank.activate(11)
        assert bank.activations == 2
        assert bank.open_row == 11
        assert bank.extra_activations == 0

    def test_activate_neighbors_counts_extras(self):
        bank = self.make()
        assert bank.activate_neighbors(10) == 2
        assert bank.extra_activations == 2
        assert bank.activations == 0

    def test_edge_act_n_counts_one(self):
        bank = self.make()
        assert bank.activate_neighbors(0) == 1
        assert bank.extra_activations == 1

    def test_refresh_rows_restores_disturbance(self):
        bank = self.make()
        for _ in range(5):
            bank.activate(10)
        bank.refresh_rows([9, 11])
        assert bank.disturbance.disturbance(9) == 0
        assert bank.refreshes == 1

    def test_row_bounds_enforced(self):
        with pytest.raises(ValueError):
            self.make().activate(512)

    def test_flips_proxy(self):
        bank = self.make()
        for _ in range(50):
            bank.activate(10)
        assert len(bank.flips) == 2
        assert bank.max_disturbance >= 50


class TestDRAMDevice:
    def test_starts_before_first_interval(self):
        device = DRAMDevice(small_test_config())
        assert device.interval == -1

    def test_refresh_tick_advances_interval(self):
        device = DRAMDevice(small_test_config())
        device.refresh_tick()
        assert device.interval == 0
        device.refresh_tick()
        assert device.interval == 1

    def test_window_wraps(self):
        config = small_test_config()
        device = DRAMDevice(config)
        refint = config.geometry.refint
        for _ in range(refint + 3):
            device.refresh_tick()
        assert device.window == 1
        assert device.window_interval == 2

    def test_tick_refreshes_policy_rows_in_every_bank(self):
        config = small_test_config(num_banks=2)
        device = DRAMDevice(config)
        for bank in device.banks:
            bank.activate(1)  # disturbs rows 0 and 2
        device.refresh_tick()  # interval 0 refreshes rows 0..7
        for bank in device.banks:
            assert bank.disturbance.disturbance(0) == 0
            assert bank.disturbance.disturbance(2) == 0

    def test_custom_policy_used(self):
        config = small_test_config()
        policy = RandomRefresh(config.geometry, seed=5)
        device = DRAMDevice(config, refresh_policy=policy)
        assert device.refresh_policy is policy

    def test_policy_geometry_must_match(self):
        config = small_test_config()
        other = small_test_config(rows_per_bank=256)
        with pytest.raises(ValueError):
            DRAMDevice(config, refresh_policy=SequentialRefresh(other.geometry))

    def test_aggregates(self):
        config = small_test_config(num_banks=2)
        device = DRAMDevice(config)
        device.activate(0, 10)
        device.activate(1, 20)
        device.activate_neighbors(0, 10)
        assert device.total_activations == 2
        assert device.total_extra_activations == 2
        assert device.max_disturbance >= 1
        assert device.flips == []
