"""Tests for the four refresh policies of the robustness experiment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMGeometry
from repro.dram.refresh import (
    CounterMaskRefresh,
    RandomRefresh,
    RemappedRefresh,
    SequentialRefresh,
    all_policies,
)


def geometry(rows=512, per_interval=8):
    return DRAMGeometry(num_banks=1, rows_per_bank=rows, rows_per_interval=per_interval)


class TestSequential:
    def test_matches_paper_example(self):
        policy = SequentialRefresh(geometry())
        assert list(policy.rows_for_interval(0)) == list(range(0, 8))
        assert list(policy.rows_for_interval(1)) == list(range(8, 16))

    def test_full_coverage(self):
        assert SequentialRefresh(geometry()).validate_full_coverage()


class TestRemapped:
    def test_full_coverage_despite_remapping(self):
        policy = RemappedRefresh(geometry(), remap_fraction=0.1, seed=3)
        assert policy.validate_full_coverage()

    def test_some_rows_remapped(self):
        policy = RemappedRefresh(geometry(), remap_fraction=0.2, seed=3)
        sequential = SequentialRefresh(geometry())
        differences = 0
        for interval in range(64):
            if list(policy.rows_for_interval(interval)) != list(
                sequential.rows_for_interval(interval)
            ):
                differences += 1
        assert differences > 0

    def test_zero_fraction_equals_sequential(self):
        policy = RemappedRefresh(geometry(), remap_fraction=0.0)
        sequential = SequentialRefresh(geometry())
        for interval in range(64):
            assert list(policy.rows_for_interval(interval)) == list(
                sequential.rows_for_interval(interval)
            )

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            RemappedRefresh(geometry(), remap_fraction=1.5)

    def test_deterministic_per_seed(self):
        a = RemappedRefresh(geometry(), remap_fraction=0.2, seed=9)
        b = RemappedRefresh(geometry(), remap_fraction=0.2, seed=9)
        for interval in range(8):
            assert list(a.rows_for_interval(interval)) == list(
                b.rows_for_interval(interval)
            )


class TestRandom:
    def test_full_coverage(self):
        assert RandomRefresh(geometry(), seed=1).validate_full_coverage()

    def test_differs_from_sequential(self):
        policy = RandomRefresh(geometry(), seed=1)
        assert list(policy.rows_for_interval(0)) != list(range(8))

    def test_interval_bounds(self):
        with pytest.raises(ValueError):
            RandomRefresh(geometry(), seed=1).rows_for_interval(64)


class TestCounterMask:
    def test_full_coverage_power_of_two(self):
        assert CounterMaskRefresh(geometry(), mask=0b1010).validate_full_coverage()

    def test_mask_zero_is_sequential(self):
        policy = CounterMaskRefresh(geometry(), mask=0)
        sequential = SequentialRefresh(geometry())
        for interval in range(64):
            assert list(policy.rows_for_interval(interval)) == list(
                sequential.rows_for_interval(interval)
            )

    def test_xor_order(self):
        policy = CounterMaskRefresh(geometry(), mask=1)
        assert list(policy.rows_for_interval(0)) == list(range(8, 16))
        assert list(policy.rows_for_interval(1)) == list(range(0, 8))

    @given(mask=st.integers(min_value=0, max_value=63))
    @settings(max_examples=20)
    def test_any_mask_full_coverage(self, mask):
        assert CounterMaskRefresh(geometry(), mask=mask).validate_full_coverage()


class TestAllPolicies:
    def test_returns_four_distinctly_named_policies(self):
        policies = all_policies(geometry(), seed=0)
        assert len(policies) == 4
        assert len({policy.name for policy in policies}) == 4

    def test_every_policy_covers_all_rows(self):
        for policy in all_policies(geometry(), seed=0):
            assert policy.validate_full_coverage(), policy.name
