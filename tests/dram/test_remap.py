"""Tests for remapped row adjacency."""

import pytest

from repro.config import DRAMGeometry
from repro.dram.remap import RemappedGeometry, random_remap_geometry


def base():
    return DRAMGeometry(num_banks=1, rows_per_bank=512, rows_per_interval=8)


def remapped(swaps):
    return RemappedGeometry(
        num_banks=1, rows_per_bank=512, rows_per_interval=8, swaps=swaps
    )


class TestSwaps:
    def test_identity_without_swaps(self):
        geometry = remapped(())
        assert geometry.neighbors(100) == (99, 101)
        assert geometry.physical_slot(100) == 100

    def test_swap_moves_both_rows(self):
        geometry = remapped(((10, 400),))
        assert geometry.physical_slot(10) == 400
        assert geometry.physical_slot(400) == 10
        assert geometry.row_at_slot(400) == 10
        assert geometry.row_at_slot(10) == 400

    def test_neighbors_follow_physical_slot(self):
        geometry = remapped(((10, 400),))
        # logical 10 lives at slot 400: its physical neighbours are the
        # rows stored at slots 399 and 401
        assert geometry.neighbors(10) == (399, 401)
        # logical 400 lives at slot 10
        assert geometry.neighbors(400) == (9, 11)

    def test_neighbor_of_adjacent_row_is_the_swapped_in_row(self):
        geometry = remapped(((10, 400),))
        # slot 11's neighbours are slots 10 and 12; slot 10 now holds
        # logical row 400
        assert geometry.neighbors(11) == (400, 12)

    def test_assumed_neighbors_ignore_remap(self):
        geometry = remapped(((10, 400),))
        assert geometry.assumed_neighbors(10) == (9, 11)
        assert geometry.assumed_neighbors(11) == (10, 12)

    def test_rejects_degenerate_swap(self):
        with pytest.raises(ValueError):
            remapped(((5, 5),))

    def test_rejects_overlapping_swaps(self):
        with pytest.raises(ValueError):
            remapped(((5, 10), (10, 20)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            remapped(((5, 512),))


class TestRandomRemap:
    def test_requested_pair_count(self):
        geometry = random_remap_geometry(base(), pairs=8, seed=1)
        assert len(geometry.swaps) == 8

    def test_deterministic(self):
        a = random_remap_geometry(base(), pairs=4, seed=2)
        b = random_remap_geometry(base(), pairs=4, seed=2)
        assert a.swaps == b.swaps

    def test_slots_form_permutation(self):
        geometry = random_remap_geometry(base(), pairs=16, seed=3)
        slots = {geometry.physical_slot(row) for row in range(512)}
        assert slots == set(range(512))

    def test_every_slot_resolves_back(self):
        geometry = random_remap_geometry(base(), pairs=16, seed=3)
        for row in range(512):
            assert geometry.row_at_slot(geometry.physical_slot(row)) == row
