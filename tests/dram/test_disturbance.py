"""Tests for the Row-Hammer disturbance model."""

from hypothesis import given, strategies as st

from repro.config import DRAMGeometry
from repro.dram.disturbance import BankDisturbance


def make(threshold=10, rows=64):
    geometry = DRAMGeometry(num_banks=1, rows_per_bank=rows, rows_per_interval=8)
    return BankDisturbance(geometry=geometry, flip_threshold=threshold, bank=0)


class TestActivation:
    def test_disturbs_both_neighbors(self):
        model = make()
        model.on_activation(10)
        assert model.disturbance(9) == 1
        assert model.disturbance(11) == 1

    def test_does_not_disturb_self_or_distant(self):
        model = make()
        model.on_activation(10)
        assert model.disturbance(10) == 0
        assert model.disturbance(12) == 0

    def test_edge_row_disturbs_single_neighbor(self):
        model = make()
        model.on_activation(0)
        assert model.disturbance(1) == 1
        model.on_activation(63)
        assert model.disturbance(62) == 1

    def test_activation_restores_own_row(self):
        model = make()
        model.on_activation(10)  # disturbs 11
        assert model.disturbance(11) == 1
        model.on_activation(11)  # activating 11 restores it
        assert model.disturbance(11) == 0

    def test_counts_accumulate(self):
        model = make()
        for _ in range(5):
            model.on_activation(10)
        assert model.disturbance(9) == 5
        assert model.max_disturbance == 5


class TestRefresh:
    def test_refresh_resets_counter(self):
        model = make()
        for _ in range(4):
            model.on_activation(10)
        model.refresh_row(9)
        assert model.disturbance(9) == 0
        assert model.disturbance(11) == 4  # untouched

    def test_refresh_untracked_row_is_noop(self):
        model = make()
        model.refresh_row(20)
        assert model.disturbance(20) == 0


class TestActivateNeighbors:
    def test_act_n_restores_both_victims(self):
        model = make()
        for _ in range(6):
            model.on_activation(10)
        performed = model.activate_neighbors(10)
        assert performed == 2
        assert model.disturbance(9) == 0
        assert model.disturbance(11) == 0

    def test_act_n_itself_disturbs_second_neighbors(self):
        model = make()
        model.activate_neighbors(10)
        # activating rows 9 and 11 disturbs 8, 10 and 12; row 10 is
        # disturbed by both
        assert model.disturbance(8) == 1
        assert model.disturbance(12) == 1
        assert model.disturbance(10) == 2

    def test_act_n_at_edge_returns_one(self):
        model = make()
        assert model.activate_neighbors(0) == 1


class TestFlipDetection:
    def test_flip_recorded_at_threshold(self):
        model = make(threshold=3)
        for _ in range(3):
            model.on_activation(10)
        # both neighbours cross the threshold on the same activation
        assert len(model.flips) == 2
        for flip in model.flips:
            assert flip.row in (9, 11)
            assert flip.count == 3

    def test_both_victims_flip(self):
        model = make(threshold=3)
        for _ in range(3):
            model.on_activation(10)
        assert len(model.flips) == 2
        assert {flip.row for flip in model.flips} == {9, 11}

    def test_flip_recorded_once_despite_further_hammering(self):
        model = make(threshold=3)
        for _ in range(10):
            model.on_activation(10)
        assert len(model.flips) == 2  # one per victim, not per act

    def test_no_flip_below_threshold(self):
        model = make(threshold=100)
        for _ in range(99):
            model.on_activation(10)
        assert model.flips == []
        assert model.max_disturbance == 99

    def test_refresh_prevents_flip(self):
        model = make(threshold=10)
        for _ in range(9):
            model.on_activation(10)
        model.refresh_row(9)
        model.refresh_row(11)
        for _ in range(9):
            model.on_activation(10)
        assert model.flips == []

    def test_double_sided_sums_contributions(self):
        model = make(threshold=10)
        for _ in range(5):
            model.on_activation(9)
            model.on_activation(11)
        # victim 10 disturbed by both aggressors: 10 total
        assert len([flip for flip in model.flips if flip.row == 10]) == 1


class TestInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_counts_never_negative_and_max_consistent(self, rows):
        model = make(threshold=10_000)
        for row in rows:
            model.on_activation(row)
        counts = [model.disturbance(row) for row in range(64)]
        assert all(count >= 0 for count in counts)
        assert model.max_disturbance >= max(counts, default=0)

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_total_disturbance_bounded_by_two_per_act(self, rows):
        model = make(threshold=10_000)
        for row in rows:
            model.on_activation(row)
        total = sum(model.disturbance(row) for row in range(64))
        assert total <= 2 * len(rows)


class TestDistance2Coupling:
    """Half-Double extension: second-neighbour disturbance."""

    def make_coupled(self, rate, threshold=10):
        geometry = DRAMGeometry(
            num_banks=1, rows_per_bank=64, rows_per_interval=8
        )
        return BankDisturbance(
            geometry=geometry, flip_threshold=threshold, bank=0,
            distance2_rate=rate,
        )

    def test_zero_rate_is_inert(self):
        model = self.make_coupled(0.0)
        model.on_activation(10)
        assert model.disturbance(8) == 0
        assert model.disturbance(12) == 0

    def test_second_neighbors_accumulate_fractionally(self):
        model = self.make_coupled(0.5)
        model.on_activation(10)
        model.on_activation(10)
        assert model.disturbance(8) == 1  # 2 * 0.5
        assert model.disturbance(12) == 1

    def test_first_neighbors_unchanged(self):
        model = self.make_coupled(0.5)
        model.on_activation(10)
        assert model.disturbance(9) == 1
        assert model.disturbance(11) == 1

    def test_fractional_crossing_records_flip(self):
        model = self.make_coupled(0.5, threshold=2)
        for _ in range(4):
            model.on_activation(10)
        rows = {flip.row for flip in model.flips}
        assert 8 in rows and 12 in rows

    def test_refresh_clears_fractional_charge(self):
        model = self.make_coupled(0.5)
        model.on_activation(10)
        model.refresh_row(8)
        assert model.disturbance(8) == 0
