"""Tests for the flat-address mapper."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DRAMGeometry
from repro.dram.geometry import AddressMapper


def mapper(banks=4, rows=64):
    return AddressMapper(
        DRAMGeometry(num_banks=banks, rows_per_bank=rows, rows_per_interval=8)
    )


class TestAddressMapper:
    def test_capacity(self):
        assert mapper().capacity_rows == 256

    def test_bank_interleaving(self):
        m = mapper()
        assert m.decode(0) == (0, 0)
        assert m.decode(1) == (1, 0)
        assert m.decode(4) == (0, 1)

    def test_encode_is_inverse(self):
        m = mapper()
        assert m.encode(2, 5) == 5 * 4 + 2

    def test_decode_bounds(self):
        with pytest.raises(ValueError):
            mapper().decode(256)
        with pytest.raises(ValueError):
            mapper().decode(-1)

    def test_encode_bounds(self):
        with pytest.raises(ValueError):
            mapper().encode(4, 0)
        with pytest.raises(ValueError):
            mapper().encode(0, 64)

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip_property(self, flat):
        m = mapper()
        bank, row = m.decode(flat)
        assert m.encode(bank, row) == flat
        assert 0 <= bank < 4
        assert 0 <= row < 64
