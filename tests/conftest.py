"""Shared fixtures: shrunk configurations that keep whole-window tests cheap."""

from __future__ import annotations

import pytest

from repro.config import DRAMGeometry, SimConfig, small_test_config


@pytest.fixture
def tiny_config() -> SimConfig:
    """512 rows, 64 intervals per window, one bank."""
    return small_test_config()


@pytest.fixture
def tiny_geometry(tiny_config) -> DRAMGeometry:
    return tiny_config.geometry


@pytest.fixture
def two_bank_config() -> SimConfig:
    return small_test_config(num_banks=2)


@pytest.fixture
def paper_config() -> SimConfig:
    """The exact Table I configuration (use sparingly in tests)."""
    return SimConfig()
