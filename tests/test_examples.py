"""Smoke tests: every example script runs end to end.

Each example is executed as a subprocess with scaled-down arguments so
the suite stays fast; the assertion is that it exits cleanly and prints
its headline output.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--intervals", "128")
        assert "no mitigation" in out
        assert "LoLiPRoMi" in out

    def test_attack_demo(self):
        out = run_example("attack_demo.py", "--intervals", "256", "--rate", "140")
        assert "unprotected" in out
        assert "CaPRoMi" in out

    def test_compare_mitigations(self):
        out = run_example("compare_mitigations.py", "--intervals", "128",
                          "--seeds", "1")
        assert "Table III" in out
        assert "PROTECTED" in out or "FLIPPED" in out

    def test_flooding_attack(self):
        out = run_example("flooding_attack.py", "--seeds", "2",
                          "--start-weights", "4096")
        assert "start weight" in out

    def test_refresh_policy_study(self):
        out = run_example("refresh_policy_study.py", "--intervals", "128",
                          "--seeds", "1")
        assert "counter-mask" in out

    def test_full_system_pipeline(self):
        out = run_example("full_system_pipeline.py", "--intervals", "16")
        assert "timing violations: 0" in out
        assert "no mitigation" in out

    def test_counter_tree_saturation(self):
        out = run_example("counter_tree_saturation.py",
                          "--node-budgets", "16", "64")
        assert "finest" in out

    def test_software_vs_hardware(self):
        out = run_example("software_vs_hardware.py", "--windows", "3")
        assert "software detector" in out

    def test_traced_run(self, tmp_path):
        out = run_example("traced_run.py", "--intervals", "96",
                          "--out", str(tmp_path / "events.jsonl"))
        assert "event counts by kind" in out
        assert "interval-rollover" in out
        assert "telemetry observes, never decides" in out
        assert (tmp_path / "events.jsonl").exists()

    def test_every_example_has_a_test(self):
        scripts = {path.name for path in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py", "attack_demo.py", "compare_mitigations.py",
            "flooding_attack.py", "refresh_policy_study.py",
            "full_system_pipeline.py", "counter_tree_saturation.py",
            "software_vs_hardware.py", "parallel_campaign.py",
            "traced_run.py",
        }
        assert scripts <= tested, scripts - tested

    def test_parallel_campaign(self):
        out = run_example("parallel_campaign.py", "--intervals", "64",
                          "--seeds", "1", "--workers", "2")
        assert "PARA" in out
